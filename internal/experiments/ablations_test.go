package experiments

import (
	"strings"
	"testing"

	"memcon/internal/dram"
)

func TestAblationsRegistered(t *testing.T) {
	for _, id := range []string{"abl-buffer", "abl-accel", "abl-pril"} {
		if _, err := Describe(id); err != nil {
			t.Errorf("ablation %q not registered: %v", id, err)
		}
	}
}

func TestRunAblBuffer(t *testing.T) {
	out, err := Run("abl-buffer", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*AblBufferResult)
	if len(r.Rows) < 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Unbounded must discard nothing; a starved buffer must discard and
	// must not beat the unbounded reduction.
	unbounded := r.Rows[0]
	if unbounded.Capacity != 0 || unbounded.Discards != 0 {
		t.Errorf("unbounded row = %+v", unbounded)
	}
	starved := r.Rows[len(r.Rows)-1]
	if starved.Discards == 0 {
		t.Error("starved buffer discarded nothing; sweep is vacuous")
	}
	if starved.Reduction > unbounded.Reduction+1e-9 {
		t.Errorf("starved reduction %v beats unbounded %v", starved.Reduction, unbounded.Reduction)
	}
	if !strings.Contains(out.String(), "unbounded") {
		t.Error("report missing capacity labels")
	}
}

func TestRunAblAccel(t *testing.T) {
	out, err := Run("abl-accel", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*AblAccelResult)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	if r.Rows[0].MinWriteInterval != 864*dram.Millisecond {
		t.Errorf("baseline MWI = %d ms, want 864", r.Rows[0].MinWriteInterval/dram.Millisecond)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MinWriteInterval > r.Rows[i-1].MinWriteInterval {
			t.Error("acceleration increased MinWriteInterval")
		}
	}
	_ = out.String()
}

func TestRunAblPril(t *testing.T) {
	out, err := Run("abl-pril", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*AblPrilResult)
	if !r.Identical {
		t.Error("bitmap PRIL not prediction-equivalent to buffer PRIL")
	}
	if r.BufferPredictions == 0 {
		t.Error("no predictions made; comparison vacuous")
	}
	_ = out.String()
}

func TestRunEnergy(t *testing.T) {
	out, err := Run("energy", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*EnergyResult)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	// Ordering: the baseline saves nothing; every alternative saves
	// something; MEMCON sits between RAIDR and the 64 ms ideal.
	byName := map[string]EnergyRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
	}
	if byName["16ms baseline"].Savings != 0 {
		t.Errorf("baseline savings = %v", byName["16ms baseline"].Savings)
	}
	raidr := byName["RAIDR"].Savings
	mc := byName["MEMCON"].Savings
	ideal := byName["64ms ideal"].Savings
	if mc <= byName["32ms"].Savings {
		t.Errorf("MEMCON savings %v not above the 32ms policy %v", mc, byName["32ms"].Savings)
	}
	// Energy ordering with a small tolerance: testing energy is heavier
	// per op than a refresh, so MEMCON sits near RAIDR energetically and
	// below the ideal.
	if !(raidr <= mc+0.03 && mc <= ideal+1e-9) {
		t.Errorf("energy ordering broken: RAIDR %v, MEMCON %v, ideal %v", raidr, mc, ideal)
	}
	// Testing energy must stay a small fraction of refresh energy.
	mcRow := byName["MEMCON"]
	if mcRow.Breakdown.TestingMJ > 0.10*mcRow.Breakdown.RefreshMJ {
		t.Errorf("testing energy %v not small vs refresh %v",
			mcRow.Breakdown.TestingMJ, mcRow.Breakdown.RefreshMJ)
	}
	if !strings.Contains(out.String(), "MEMCON") {
		t.Error("report missing policies")
	}
}

func TestRunVRT(t *testing.T) {
	out, err := Run("vrt", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*VRTResult)
	if len(r.Checkpoints) != 12 {
		t.Fatalf("checkpoints = %d, want 12", len(r.Checkpoints))
	}
	// MEMCON's bounded exposure must beat the decaying one-shot profile.
	if r.TotalMemcon >= r.TotalRAIDR {
		t.Errorf("MEMCON escapes %d not below one-shot profile escapes %d",
			r.TotalMemcon, r.TotalRAIDR)
	}
	if r.TotalRAIDR == 0 {
		t.Error("one-shot profile never escaped; VRT population too small to mean anything")
	}
	if !strings.Contains(out.String(), "MEMCON") {
		t.Error("report incomplete")
	}
}

func TestRunClosedLoop(t *testing.T) {
	out, err := Run("loop", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*ClosedLoopResult)
	if r.CapturedWrites == 0 || r.CapturedReads == 0 {
		t.Fatalf("capture empty: %d writes, %d reads", r.CapturedWrites, r.CapturedReads)
	}
	if r.Core.RefreshReduction() <= 0 {
		t.Error("closed-loop MEMCON achieved no reduction")
	}
	if r.Combined < r.Core.RefreshReduction() {
		t.Error("combined savings below MEMCON alone")
	}
	if !strings.Contains(out.String(), "captured") {
		t.Error("report incomplete")
	}
}

func TestRunProfile(t *testing.T) {
	out, err := Run("profile", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*ProfileResult)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	// Wider guardbands flag at least as many rows.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].WeakRowFrac < r.Rows[i-1].WeakRowFrac-1e-9 {
			t.Errorf("guardband %v flagged fewer rows than %v",
				r.Rows[i].Guardband, r.Rows[i-1].Guardband)
		}
	}
	_ = out.String()
}

func TestRunAblRemap(t *testing.T) {
	out, err := Run("abl-remap", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*AblRemapResult)
	if r.TestsFailed == 0 {
		t.Skip("no failing tests at this seed; remap ablation vacuous")
	}
	if r.RemappedRows == 0 {
		t.Error("remap policy never fired")
	}
	if r.RemapReduction < r.PlainReduction {
		t.Errorf("remap lowered reduction: %v vs %v", r.RemapReduction, r.PlainReduction)
	}
	_ = out.String()
}

func TestCSVExports(t *testing.T) {
	opts := testOpts()
	for _, id := range []string{"fig6", "fig9", "fig11", "fig12", "fig14"} {
		out, err := Run(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		text, err := out.Report().CSV()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		lines := strings.Split(strings.TrimSpace(text), "\n")
		if len(lines) < 3 {
			t.Errorf("%s: csv has only %d lines", id, len(lines))
		}
		// Header and every row share the column count.
		cols := strings.Count(lines[0], ",")
		for i, l := range lines {
			if strings.Count(l, ",") != cols {
				t.Errorf("%s: line %d has different column count", id, i)
			}
		}
	}
}
