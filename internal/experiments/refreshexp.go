package experiments

import (
	"fmt"

	"memcon/internal/core"
	"memcon/internal/report"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

// pril-driven refresh experiments: Figs. 14, 17, 18.

// cilChoices are the quantum lengths Figs. 14 and 17 evaluate (ms).
var cilChoices = []trace.Microseconds{512 * trace.Millisecond, 1024 * trace.Millisecond, 2048 * trace.Millisecond}

// runEngineOn replays one generated trace through the MEMCON engine at
// the given quantum, forwarding the options' observer.
func runEngineOn(opts Options, tr *trace.Trace, quantum trace.Microseconds) (core.Report, error) {
	cfg := core.DefaultConfig()
	cfg.Quantum = quantum
	return core.RunContext(opts.Ctx, tr, cfg, core.WithObserver(opts.Observer))
}

// Fig14Row is one application's refresh reduction per CIL.
type Fig14Row struct {
	Name string
	// Reduction[i] is the refresh reduction at cilChoices[i].
	Reduction []float64
}

// Fig14Result reproduces Fig. 14.
type Fig14Result struct {
	resultMeta
	Rows       []Fig14Row
	UpperBound float64
	// AvgAt1024 is the mean reduction at the 1024 ms quantum.
	AvgAt1024 float64
	MinAt1024 float64
	MaxAt1024 float64
}

// RunFig14 measures MEMCON's refresh-operation reduction for all
// workloads at the three quantum lengths. Apps are independent work
// units (each generates its own trace); the min/avg/max fold runs over
// the fanned-in rows in app order.
func RunFig14(opts Options) (Result, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) (Fig14Row, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		row := Fig14Row{Name: apps[i].Name}
		for _, q := range cilChoices {
			rep, err := runEngineOn(opts, tr, q)
			if err != nil {
				return Fig14Row{}, err
			}
			row.Reduction = append(row.Reduction, rep.RefreshReduction())
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{UpperBound: 0.75, MinAt1024: 1, Rows: rows}
	var sum float64
	for _, row := range rows {
		r1024 := row.Reduction[1]
		sum += r1024
		if r1024 < res.MinAt1024 {
			res.MinAt1024 = r1024
		}
		if r1024 > res.MaxAt1024 {
			res.MaxAt1024 = r1024
		}
	}
	res.AvgAt1024 = sum / float64(len(res.Rows))
	return res, nil
}

// Report builds the Fig. 14 document.
func (r *Fig14Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 14 — reduction in refresh count with MEMCON (baseline: 16 ms refresh)\n\n")
	t := report.NewTable("rows",
		report.CStr("application", ""),
		report.CFloat("cil_512ms", "CIL 512ms", "fraction"),
		report.CFloat("cil_1024ms", "CIL 1024ms", "fraction"),
		report.CFloat("cil_2048ms", "CIL 2048ms", "fraction"))
	for _, row := range r.Rows {
		t.Add(report.S(row.Name),
			report.F(row.Reduction[0], pct(row.Reduction[0])),
			report.F(row.Reduction[1], pct(row.Reduction[1])),
			report.F(row.Reduction[2], pct(row.Reduction[2])))
	}
	t.Add(report.S("UPPER BOUND"),
		report.F(r.UpperBound, pct(r.UpperBound)),
		report.F(r.UpperBound, pct(r.UpperBound)),
		report.F(r.UpperBound, pct(r.UpperBound)))
	rep.AddTable(t)
	rep.Textf("\nreduction at CIL 1024 ms: avg %s, range %s - %s (paper: 64.7%% - 74.5%%)\n",
		pct(r.AvgAt1024), pct(r.MinAt1024), pct(r.MaxAt1024))
	st := report.NewTable("summary",
		report.CFloat("avg_at_1024", "", "fraction"),
		report.CFloat("min_at_1024", "", "fraction"),
		report.CFloat("max_at_1024", "", "fraction"))
	st.Add(report.Fv(r.AvgAt1024), report.Fv(r.MinAt1024), report.Fv(r.MaxAt1024))
	rep.AddDataTable(st)
	return rep
}

// String renders the Fig. 14 report as text.
func (r *Fig14Result) String() string { return r.Report().Text() }

// Fig17Row is one application's LO-REF coverage per CIL.
type Fig17Row struct {
	Name     string
	Coverage []float64
}

// Fig17Result reproduces Fig. 17.
type Fig17Result struct {
	resultMeta
	Rows []Fig17Row
	// AvgAt1024 is the mean coverage at the 1024 ms quantum.
	AvgAt1024 float64
}

// RunFig17 measures the fraction of execution time rows spend at LO-REF.
func RunFig17(opts Options) (Result, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) (Fig17Row, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		row := Fig17Row{Name: apps[i].Name}
		for _, q := range cilChoices {
			rep, err := runEngineOn(opts, tr, q)
			if err != nil {
				return Fig17Row{}, err
			}
			row.Coverage = append(row.Coverage, rep.LoRefCoverage())
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig17Result{Rows: rows}
	var sum float64
	for _, row := range rows {
		sum += row.Coverage[1]
	}
	res.AvgAt1024 = sum / float64(len(res.Rows))
	return res, nil
}

// Report builds the Fig. 17 document.
func (r *Fig17Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 17 — execution-time coverage of PRIL (time at LO-REF)\n\n")
	t := report.NewTable("rows",
		report.CStr("application", ""),
		report.CFloat("cil_512ms", "CIL 512ms", "fraction"),
		report.CFloat("cil_1024ms", "CIL 1024ms", "fraction"),
		report.CFloat("cil_2048ms", "CIL 2048ms", "fraction"))
	for _, row := range r.Rows {
		t.Add(report.S(row.Name),
			report.F(row.Coverage[0], pct(row.Coverage[0])),
			report.F(row.Coverage[1], pct(row.Coverage[1])),
			report.F(row.Coverage[2], pct(row.Coverage[2])))
	}
	rep.AddTable(t)
	rep.Textf("\naverage coverage at CIL 1024 ms: %s (paper: ~95%%)\n", pct(r.AvgAt1024))
	st := report.NewTable("summary", report.CFloat("avg_at_1024", "", "fraction"))
	st.Add(report.Fv(r.AvgAt1024))
	rep.AddDataTable(st)
	return rep
}

// String renders the Fig. 17 report as text.
func (r *Fig17Result) String() string { return r.Report().Text() }

// Fig18Row is one application's refresh+testing time, normalized to the
// baseline's refresh time.
type Fig18Row struct {
	Name string
	// RefreshShare is MEMCON refresh time / baseline refresh time.
	RefreshShare float64
	// TestCorrectShare and TestMispredShare are testing time (correct /
	// mispredicted+aborted) over baseline refresh time.
	TestCorrectShare float64
	TestMispredShare float64
}

// Fig18Result reproduces Fig. 18.
type Fig18Result struct {
	resultMeta
	Rows []Fig18Row
	// AvgTestingShare is the mean total testing share.
	AvgTestingShare float64
}

// RunFig18 measures time spent on refresh and testing under MEMCON,
// normalized to baseline refresh time.
func RunFig18(opts Options) (Result, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) (Fig18Row, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		cfg := core.DefaultConfig()
		cfg.Quantum = 1024 * trace.Millisecond
		// Model the full module: the workload's written footprint is a
		// small slice of an 8 GB DIMM; the rest holds static content
		// that MEMCON tests once and keeps at LO-REF (§6.1). This is
		// what makes testing time minuscule against the module-wide
		// refresh bill in the paper's Fig. 18.
		cfg.ReadOnlyRows = 9 * (tr.MaxPage() + 1)
		rep, err := core.RunContext(opts.Ctx, tr, cfg, core.WithObserver(opts.Observer))
		if err != nil {
			return Fig18Row{}, err
		}
		base := rep.BaselineRefreshTimeNs()
		refreshNs := rep.RefreshOps * 39 // tRAS+tRP per op
		return Fig18Row{
			Name:             apps[i].Name,
			RefreshShare:     refreshNs / base,
			TestCorrectShare: rep.TestingTimeCorrectNs / base,
			TestMispredShare: rep.TestingTimeMispredNs / base,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig18Result{Rows: rows}
	var sum float64
	for _, row := range rows {
		sum += row.TestCorrectShare + row.TestMispredShare
	}
	res.AvgTestingShare = sum / float64(len(res.Rows))
	return res, nil
}

// Report builds the Fig. 18 document.
func (r *Fig18Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 18 — time on refresh and testing, normalized to baseline refresh time\n\n")
	t := report.NewTable("rows",
		report.CStr("application", ""),
		report.CFloat("refresh", "", "fraction"),
		report.CFloat("testing_correct", "testing (correct)", "fraction"),
		report.CFloat("testing_mispred", "testing (mispredicted)", "fraction"))
	for _, row := range r.Rows {
		t.Add(report.S(row.Name),
			report.F(row.RefreshShare, pct(row.RefreshShare)),
			report.F(row.TestCorrectShare, fmt.Sprintf("%.4f%%", 100*row.TestCorrectShare)),
			report.F(row.TestMispredShare, fmt.Sprintf("%.4f%%", 100*row.TestMispredShare)))
	}
	rep.AddTable(t)
	rep.Textf("\naverage testing time: %.4f%% of baseline refresh time (paper: ~0.01%%)\n",
		100*r.AvgTestingShare)
	st := report.NewTable("summary", report.CFloat("avg_testing_share", "", "fraction"))
	st.Add(report.Fv(r.AvgTestingShare))
	rep.AddDataTable(st)
	return rep
}

// String renders the Fig. 18 report as text.
func (r *Fig18Result) String() string { return r.Report().Text() }

// Table1Result reproduces Table 1: the evaluated workload inventory.
type Table1Result struct {
	resultMeta
	Apps []workload.AppSpec
}

// RunTable1 returns the workload table.
func RunTable1(Options) (Result, error) {
	return &Table1Result{Apps: workload.Apps()}, nil
}

// Report builds the Table 1 document.
func (r *Table1Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Table 1 — evaluated long-running workloads (synthetic analogues)\n\n")
	t := report.NewTable("apps",
		report.CStr("application", ""),
		report.CStr("type", ""),
		report.CFloat("time_s", "time (s)", "s"),
		report.CFloat("mem_gb", "mem (GB)", "GB"),
		report.CInt("threads", "", ""),
		report.CInt("pages", "", ""),
		report.CFloat("pareto_alpha", "pareto alpha", ""),
		report.CFloat("xm_ms", "xm (ms)", "ms"))
	for _, a := range r.Apps {
		t.Add(report.S(a.Name), report.S(a.Type),
			report.F(a.DurationSec, fmt.Sprintf("%.1f", a.DurationSec)),
			report.F(a.MemGB, fmt.Sprintf("%.1f", a.MemGB)),
			report.I(int64(a.Threads)),
			report.I(int64(a.Pages)),
			report.F(a.IdleDist.Alpha, fmt.Sprintf("%.2f", a.IdleDist.Alpha)),
			report.F(a.IdleDist.Xm, fmt.Sprintf("%.0f", a.IdleDist.Xm)))
	}
	rep.AddTable(t)
	return rep
}

// String renders Table 1 as text.
func (r *Table1Result) String() string { return r.Report().Text() }
