package experiments

import (
	"fmt"

	"memcon/internal/core"
	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/profiler"
	"memcon/internal/report"
	"memcon/internal/softmc"
	"memcon/internal/trace"
)

// newTesterFor pairs a module with its fault model.
func newTesterFor(mod *dram.Module, model *faults.Model) (*softmc.Tester, error) {
	return softmc.NewTester(mod, model)
}

func init() {
	registry["profile"] = entry{RunProfile, "Profiling: RAIDR/REAPER-style campaign vs ground truth across guardbands", false}
	registry["abl-remap"] = entry{RunAblRemap, "Ablation: remap mitigation for always-failing rows (full-fidelity system)", false}
}

// ProfileRow is one guardband point of the profiling study.
type ProfileRow struct {
	Guardband   float64
	Rounds      int
	WeakRowFrac float64
	EscapeRate  float64
	FalseAlarms int
}

// ProfileResult sweeps the profiling campaign's guardband, quantifying
// the §6.3 tension: wider guardbands catch more truly weak rows but
// over-profile, and even then escapes remain — the argument for
// content-based online testing.
type ProfileResult struct {
	resultMeta
	Rows []ProfileRow
}

// RunProfile executes profiling campaigns at several guardbands against
// one chip and reports coverage vs ground truth.
func RunProfile(opts Options) (Result, error) {
	geom := charGeometry(opts.Scale * 0.5)
	geom.BanksPerChip = 2
	params := faults.ParamsForRefresh(dram.RefreshWindowDefault)
	params.WeakCellFraction = 3e-3
	res := &ProfileResult{}
	for _, guard := range []float64{1.0, 1.25, 1.5, 2.0} {
		// A fresh chip per campaign: profiling consumes the test clock.
		scr, err := dram.NewMappedScrambler(geom, uint64(opts.Seed), nil, opts.Mapping)
		if err != nil {
			return nil, err
		}
		model, err := faults.NewModel(geom, scr, uint64(opts.Seed), params)
		if err != nil {
			return nil, err
		}
		mod, err := dram.NewModule(geom)
		if err != nil {
			return nil, err
		}
		tester, err := newTesterFor(mod, model)
		if err != nil {
			return nil, err
		}
		// The guardband sweep is serial, so the tester's read-back scans
		// get the whole worker budget (ReadBack output is identical for
		// any parallelism).
		tester.SetParallelism(opts.Workers)
		cfg := profiler.DefaultConfig()
		cfg.Guardband = guard
		p, err := profiler.Run(tester, geom, cfg)
		if err != nil {
			return nil, err
		}
		rep := profiler.Escapes(p, model, cfg.TargetIdle)
		res.Rows = append(res.Rows, ProfileRow{
			Guardband:   guard,
			Rounds:      cfg.Rounds,
			WeakRowFrac: p.WeakRowFraction(),
			EscapeRate:  rep.EscapeRate(),
			FalseAlarms: rep.FalseAlarms,
		})
	}
	return res, nil
}

// Report builds the profiling-study document.
func (r *ProfileResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Profiling study — pattern campaign coverage vs silicon ground truth\n\n")
	t := report.NewTable("rows",
		report.CFloat("guardband", "", "x"),
		report.CFloat("weak_row_frac", "flagged rows", "fraction"),
		report.CFloat("escape_rate", "escape rate", "fraction"),
		report.CInt("false_alarms", "false alarms", "rows"))
	for _, row := range r.Rows {
		t.Add(report.F(row.Guardband, fmt.Sprintf("%.2fx", row.Guardband)),
			report.F(row.WeakRowFrac, pct2(row.WeakRowFrac)),
			report.F(row.EscapeRate, pct(row.EscapeRate)),
			report.I(int64(row.FalseAlarms)))
	}
	rep.AddTable(t)
	rep.Textf("\nguardbands trade over-profiling (false alarms refreshed at HI forever) against\nescapes; neither reaches zero escapes without physical-neighbourhood knowledge\n")
	return rep
}

// String renders the profiling study as text.
func (r *ProfileResult) String() string { return r.Report().Text() }

// AblRemapResult measures what remap mitigation buys on chips whose
// content keeps failing tests.
type AblRemapResult struct {
	resultMeta
	PlainReduction float64
	RemapReduction float64
	RemappedRows   int
	TestsFailed    int64
}

// RunAblRemap runs the full-fidelity system with a dense weak-cell
// population, with and without remap mitigation.
func RunAblRemap(opts Options) (Result, error) {
	geom := dram.Geometry{
		Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2,
		RowsPerBank: 256, ColsPerRow: 512, RedundantCols: 16,
	}
	mkTrace := func() *trace.Trace {
		tr := &trace.Trace{Duration: 20 * 1024 * trace.Millisecond}
		for p := uint32(0); p < 200; p++ {
			tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p) * 991})
		}
		tr.Sort()
		return tr
	}
	run := func(withRemap bool) (core.Report, int, error) {
		scr, err := dram.NewMappedScrambler(geom, uint64(opts.Seed), nil, opts.Mapping)
		if err != nil {
			return core.Report{}, 0, err
		}
		params := faults.ParamsForRefresh(dram.RefreshWindowDefault)
		params.WeakCellFraction = 3e-2
		model, err := faults.NewModel(geom, scr, uint64(opts.Seed), params)
		if err != nil {
			return core.Report{}, 0, err
		}
		mod, err := dram.NewModule(geom)
		if err != nil {
			return core.Report{}, 0, err
		}
		sys, err := core.NewSystem(core.DefaultConfig(), mod, model, core.WithObserver(opts.Observer))
		if err != nil {
			return core.Report{}, 0, err
		}
		if withRemap {
			if err := sys.EnableRemapMitigation(8, 1); err != nil {
				return core.Report{}, 0, err
			}
		}
		rep, err := sys.Run(mkTrace())
		return rep, sys.RemappedRows(), err
	}
	plain, _, err := run(false)
	if err != nil {
		return nil, err
	}
	remapped, n, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblRemapResult{
		PlainReduction: plain.RefreshReduction(),
		RemapReduction: remapped.RefreshReduction(),
		RemappedRows:   n,
		TestsFailed:    plain.TestsFailed,
	}, nil
}

// Report builds the remap-ablation document.
func (r *AblRemapResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Ablation — remap mitigation for rows that keep failing tests\n\n")
	t := report.NewTable("rows",
		report.CStr("configuration", ""),
		report.CFloat("reduction", "refresh reduction", "fraction"))
	t.Add(report.S("HI-REF mitigation only (paper)"), report.F(r.PlainReduction, pct(r.PlainReduction)))
	t.Add(report.S("with remap to screened spares"), report.F(r.RemapReduction, pct(r.RemapReduction)))
	rep.AddTable(t)
	rep.Textf("\n%d failing tests; %d rows remapped — completing the paper's mitigation triad\n(high refresh / ECC / remapping) converts permanently-HI rows into LO rows\n",
		r.TestsFailed, r.RemappedRows)
	st := report.NewTable("summary",
		report.CInt("tests_failed", "", ""),
		report.CInt("remapped_rows", "", "rows"))
	st.Add(report.I(r.TestsFailed), report.I(int64(r.RemappedRows)))
	rep.AddDataTable(st)
	return rep
}

// String renders the remap ablation as text.
func (r *AblRemapResult) String() string { return r.Report().Text() }
