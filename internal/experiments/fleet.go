package experiments

import (
	"fmt"
	"io"
	"math"

	"memcon/internal/fleet"
	"memcon/internal/report"
)

// The fleet experiments scale the single-module characterization out to
// a deployment: fleet-ce answers "what failed" (the CE event log and
// its AMD-style per-bank clustering), fleet-risk answers "what next"
// (early-CE features scored against the recorded UE ground truth).
// Both run the same deterministic simulation, so a combined study pays
// for it twice only in CPU, never in divergent numbers.

// runFleetSim executes the shared fleet simulation for the options.
func runFleetSim(opts Options) (*fleet.Log, *fleet.Analytics, error) {
	log, err := fleet.Run(opts.Ctx, fleet.Config{
		Modules: opts.Fleet,
		Seed:    opts.Seed,
		Scale:   opts.Scale,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	return log, fleet.Analyze(log), nil
}

// CELogWriter is implemented by fleet results that can serialize their
// CE event log in the compact streaming format (memconsim -fleet-out).
type CELogWriter interface {
	WriteCELog(w io.Writer) error
}

// FleetCEResult reproduces the field-study view of the fleet: the raw
// correctable-error log, its deduplication headline, and the per-bank
// fault clustering.
type FleetCEResult struct {
	resultMeta
	log *fleet.Log
	an  *fleet.Analytics
}

// RunFleetCE simulates the fleet and clusters its CE log.
func RunFleetCE(opts Options) (Result, error) {
	log, an, err := runFleetSim(opts)
	if err != nil {
		return nil, err
	}
	return &FleetCEResult{log: log, an: an}, nil
}

// WriteCELog serializes the run's CE event log in the compact format.
func (r *FleetCEResult) WriteCELog(w io.Writer) error { return fleet.WriteLog(w, r.log) }

// String renders the report text.
func (r *FleetCEResult) String() string { return r.Report().Text() }

// Report builds the fleet-ce document: headline counts, the class
// census, the noisiest banks, and the per-module ground truth (quiet
// modules hidden from the text rendering, still diffed).
func (r *FleetCEResult) Report() *report.Report {
	rep := report.New(r.provenance())
	weeks := int64(r.log.Epochs) * r.log.EpochNs / (7 * 24 * 3600 * 1_000_000_000)
	rep.Textf("Fleet CE study — %d modules observed for %d weekly scrub epochs (%d weeks)\n\n",
		r.log.Modules, r.log.Epochs, weeks)
	rep.Textf("correctable errors: %d raw, %d distinct cells (max %d reports of one cell)\n\n",
		r.an.Events, r.an.UniqueCells, r.an.MaxRepeat)

	classes := report.NewTable("classes",
		report.CStr("class", ""),
		report.CInt("banks", "", "banks"))
	for i, name := range fleet.ClassNames() {
		classes.Add(report.S(name), report.I(int64(r.an.ClassCounts[i])))
	}
	rep.AddTable(classes)
	rep.Textf("\n")

	banks := report.NewTable("banks",
		report.CStr("bank", ""),
		report.CInt("events", "", "CEs"),
		report.CInt("unique", "", "cells"),
		report.CInt("rows", "", "rows"),
		report.CInt("cols", "", "cols"),
		report.CInt("max_row_span", "row span", "cells"),
		report.CInt("max_col_span", "col span", "cells"),
		report.CStr("class", ""))
	for i, bc := range r.an.Banks {
		cells := []report.Cell{
			report.S(fmt.Sprintf("m%d/r%d/b%d", bc.Key.Module, bc.Key.Rank, bc.Key.Bank)),
			report.I(int64(bc.Events)), report.I(int64(bc.Unique)),
			report.I(int64(bc.Rows)), report.I(int64(bc.Cols)),
			report.I(int64(bc.MaxRowSpan)), report.I(int64(bc.MaxColSpan)),
			report.S(bc.Class),
		}
		// Banks arrive in key order; print the first screenful, keep
		// the rest diffable.
		if i < 16 {
			banks.Add(cells...)
		} else {
			banks.AddHidden(cells...)
		}
	}
	rep.AddTable(banks)
	rep.Textf("\n")

	modules := report.NewTable("modules",
		report.CStr("module", ""),
		report.CStr("class", ""),
		report.CStr("content", ""),
		report.CFloat("weak_scale", "weak x", "ratio"),
		report.CInt("ces", "CEs", "events"),
		report.CInt("ue_epoch", "UE epoch", "epoch"))
	for _, info := range r.log.Info {
		ueEpoch := int64(-1)
		if info.UEAtNs >= 0 {
			ueEpoch = info.UEAtNs / r.log.EpochNs
		}
		cells := []report.Cell{
			report.S(fmt.Sprintf("m%d", info.Module)),
			report.S(info.Class), report.S(info.Content),
			report.F(info.WeakScale, fmt.Sprintf("%.2f", info.WeakScale)),
			report.I(int64(info.CEs)), report.I(ueEpoch),
		}
		// Text shows the modules with a story: errors or a UE.
		if info.CEs > 0 || info.UEAtNs >= 0 {
			modules.Add(cells...)
		} else {
			modules.AddHidden(cells...)
		}
	}
	rep.AddTable(modules)
	return rep
}

// FleetRiskResult reproduces the "First CE Matters" study over the
// fleet: per-module early-CE feature vectors, deterministic risk
// scores, and the confusion matrix against the UE ground truth.
type FleetRiskResult struct {
	resultMeta
	log *fleet.Log
	an  *fleet.Analytics
}

// RunFleetRisk simulates the fleet and scores UE risk predictions.
func RunFleetRisk(opts Options) (Result, error) {
	log, an, err := runFleetSim(opts)
	if err != nil {
		return nil, err
	}
	return &FleetRiskResult{log: log, an: an}, nil
}

// WriteCELog serializes the run's CE event log in the compact format.
func (r *FleetRiskResult) WriteCELog(w io.Writer) error { return fleet.WriteLog(w, r.log) }

// String renders the report text.
func (r *FleetRiskResult) String() string { return r.Report().Text() }

// rate renders a possibly-undefined ratio as a report cell: NaN (no
// positive predictions or labels) becomes the finite sentinel -1
// displayed "n/a", keeping the JSON encoding valid.
func rate(v float64) report.Cell {
	if math.IsNaN(v) {
		return report.F(-1, "n/a")
	}
	return report.F(v, fmt.Sprintf("%.3f", v))
}

// Report builds the fleet-risk document: the prediction scoreboard plus
// the per-module feature table (quiet, unflagged modules hidden from
// the text rendering, still diffed).
func (r *FleetRiskResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fleet UE-risk study — %d modules, features from the first %d of %d epochs\n\n",
		r.log.Modules, r.an.EarlyEpochs, r.log.Epochs)

	scoreboard := report.NewTable("scoreboard",
		report.CInt("tp", "TP", "modules"),
		report.CInt("fp", "FP", "modules"),
		report.CInt("fn", "FN", "modules"),
		report.CInt("tn", "TN", "modules"),
		report.CFloat("precision", "", "fraction"),
		report.CFloat("recall", "", "fraction"),
		report.CInt("mean_lead_ns", "mean lead", "ns"))
	m := r.an.Matrix
	scoreboard.Add(
		report.I(int64(m.TP)), report.I(int64(m.FP)),
		report.I(int64(m.FN)), report.I(int64(m.TN)),
		rate(m.Precision()), rate(m.Recall()),
		report.Id(r.an.MeanLeadNs, leadText(r.an.MeanLeadNs, r.log.EpochNs)))
	rep.AddTable(scoreboard)
	rep.Textf("\n")

	risks := report.NewTable("risk",
		report.CStr("module", ""),
		report.CInt("first_ce_ns", "first CE", "ns"),
		report.CInt("early_ces", "early CEs", "events"),
		report.CInt("early_unique", "unique", "cells"),
		report.CInt("early_repeats", "repeats", "events"),
		report.CInt("early_row_span", "row span", "cells"),
		report.CInt("early_col_span", "col span", "cells"),
		report.CFloat("score", "", "probability"),
		report.CStr("verdict", ""))
	for _, mr := range r.an.Risk {
		cells := []report.Cell{
			report.S(fmt.Sprintf("m%d", mr.Module)),
			report.I(mr.FirstCEAtNs),
			report.I(int64(mr.EarlyCEs)), report.I(int64(mr.EarlyUnique)),
			report.I(int64(mr.EarlyRepeats)),
			report.I(int64(mr.EarlyMaxRowSpan)), report.I(int64(mr.EarlyMaxColSpan)),
			report.F(mr.Score, fmt.Sprintf("%.3f", mr.Score)),
			report.S(verdict(mr)),
		}
		// Text shows the modules with any early signal, the predictor's
		// picks, and every ground-truth UE — the first screenful; the
		// quiet rest stays diffable.
		if (mr.Predicted || mr.UEAtNs >= 0 || mr.EarlyCEs > 0) && risks.VisibleRows() < 16 {
			risks.Add(cells...)
		} else {
			risks.AddHidden(cells...)
		}
	}
	rep.AddTable(risks)
	return rep
}

// leadText renders the mean prediction lead in epochs.
func leadText(leadNs, epochNs int64) string {
	if leadNs < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f epochs", float64(leadNs)/float64(epochNs))
}

// verdict names a module's prediction outcome for the text table.
func verdict(r fleet.ModuleRisk) string {
	ue := r.UEAtNs >= 0
	switch {
	case r.FailedEarly:
		return "failed-early"
	case r.Predicted && ue:
		return "hit"
	case r.Predicted:
		return "false-alarm"
	case ue:
		return "miss"
	default:
		return "quiet"
	}
}
