package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memcon/internal/report"
)

func testRequest(id string) Request {
	r := DefaultRequest(id)
	r.Scale = 0.04
	r.SimTimeNs = 200_000
	r.Mixes = 2
	return r
}

func TestDefaultRequestMatchesDefaultOptions(t *testing.T) {
	d := DefaultOptions()
	r := DefaultRequest("fig14")
	if r.Experiment != "fig14" || r.Seed != d.Seed || r.Scale != d.Scale ||
		r.SimTimeNs != d.SimTimeNs || r.Mixes != d.Mixes {
		t.Errorf("DefaultRequest = %+v, want the DefaultOptions values %+v", r, d)
	}
	if r.Fleet != 0 {
		t.Errorf("DefaultRequest.Fleet = %d, want 0 (derived at Normalize)", r.Fleet)
	}
}

func TestNormalizeValidates(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Request)
		want string
	}{
		{"unknown id", func(r *Request) { r.Experiment = "fig99" }, "unknown experiment"},
		{"zero scale", func(r *Request) { r.Scale = 0 }, "scale"},
		{"oversized scale", func(r *Request) { r.Scale = 1.5 }, "scale"},
		{"zero simtime", func(r *Request) { r.SimTimeNs = 0 }, "simtime"},
		{"negative mixes", func(r *Request) { r.Mixes = -1 }, "mixes"},
		{"negative fleet", func(r *Request) { r.Fleet = -2 }, "fleet"},
	}
	for _, tc := range cases {
		r := DefaultRequest("fig14")
		tc.mut(&r)
		err := r.Normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Normalize() = %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

// TestNormalizeCanonicalizesFleet pins the one rewrite Normalize
// performs: single-module experiments drop a stray Fleet, fleet
// experiments derive the scale-proportional default.
func TestNormalizeCanonicalizesFleet(t *testing.T) {
	r := DefaultRequest("fig14")
	r.Fleet = 99
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Fleet != 0 {
		t.Errorf("fig14 Fleet = %d after Normalize, want 0", r.Fleet)
	}

	f := DefaultRequest("fleet-ce")
	if err := f.Normalize(); err != nil {
		t.Fatal(err)
	}
	if f.Fleet != 160 {
		t.Errorf("fleet-ce Fleet at scale 1 = %d, want derived 160", f.Fleet)
	}
	f = DefaultRequest("fleet-ce")
	f.Scale = 0.01
	f.Fleet = 0
	if err := f.Normalize(); err != nil {
		t.Fatal(err)
	}
	if f.Fleet != 4 {
		t.Errorf("fleet-ce Fleet at scale 0.01 = %d, want floor 4", f.Fleet)
	}
	f = DefaultRequest("fleet-ce")
	f.Fleet = 12
	if err := f.Normalize(); err != nil {
		t.Fatal(err)
	}
	if f.Fleet != 12 {
		t.Errorf("explicit Fleet rewritten to %d", f.Fleet)
	}
}

// TestRequestJSONOverlay pins the decode-onto-defaults idiom the server
// uses: absent fields keep the defaults, present fields win, and an
// explicit zero seed is honoured — the property Options needed SeedSet
// for.
func TestRequestJSONOverlay(t *testing.T) {
	req := DefaultRequest("fig3")
	if err := json.Unmarshal([]byte(`{"seed":0,"scale":0.25}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.Seed != 0 {
		t.Errorf("explicit zero seed became %d", req.Seed)
	}
	if req.Scale != 0.25 {
		t.Errorf("scale = %v, want 0.25", req.Scale)
	}
	if req.SimTimeNs != DefaultOptions().SimTimeNs || req.Mixes != DefaultOptions().Mixes {
		t.Errorf("absent fields lost their defaults: %+v", req)
	}
	if req.Experiment != "fig3" {
		t.Errorf("experiment = %q", req.Experiment)
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	r := testRequest("fleet-ce")
	r.Fleet = 8
	r.Version = "v1"
	b, err := r.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip changed the request:\n  in  %+v\n  out %+v", r, back)
	}
	b2, err := back.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("canonical encodings differ:\n%s\n%s", b, b2)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	base := testRequest("fig6")
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	muts := map[string]func(*Request){
		"experiment": func(r *Request) { r.Experiment = "minwi" },
		"seed":       func(r *Request) { r.Seed++ },
		"scale":      func(r *Request) { r.Scale = 0.05 },
		"simtime":    func(r *Request) { r.SimTimeNs++ },
		"mixes":      func(r *Request) { r.Mixes++ },
		"fleet":      func(r *Request) { r.Fleet++ },
		"version":    func(r *Request) { r.Version = "other" },
	}
	seen := map[string]string{base.KeyHex(): "base"}
	for field, mut := range muts {
		r := base
		mut(&r)
		hex := r.KeyHex()
		if prev, dup := seen[hex]; dup {
			t.Errorf("mutating %s collides with %s (key %s)", field, prev, hex)
		}
		seen[hex] = field
	}
	again := base
	if again.KeyHex() != base.KeyHex() {
		t.Error("identical requests produced different keys")
	}
	if len(base.KeyHex()) != 64 {
		t.Errorf("key hex length = %d, want 64", len(base.KeyHex()))
	}
}

// TestProvenanceRoundTrip is the -diff default-drift regression: for
// every committed reference report, rebuilding the request from saved
// provenance, normalizing, and restamping must reproduce the saved
// provenance exactly (title aside — it comes from the registry). A new
// provenance field that is not carried through RequestFromProvenance
// fails here the moment a reference report records it.
func TestProvenanceRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "reports", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reference reports found")
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := report.DecodeBytes(b)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		req := RequestFromProvenance(rep.Prov)
		if err := req.Normalize(); err != nil {
			t.Errorf("%s: Normalize: %v", f, err)
			continue
		}
		got := report.Provenance{
			Experiment: req.Experiment,
			Title:      rep.Prov.Title,
			Seed:       req.Seed,
			Scale:      req.Scale,
			SimTimeNs:  req.SimTimeNs,
			Mixes:      req.Mixes,
			Fleet:      req.Fleet,
			Version:    req.Version,
		}
		if got != rep.Prov {
			t.Errorf("%s: provenance drifted through the Request round trip:\n  saved %+v\n  round %+v", f, rep.Prov, got)
		}
	}
}

// TestRunContextStampsProvenance pins the request-based entrypoint: the
// stamped provenance is the normalized request, and an explicit zero
// seed survives (no SeedSet in sight).
func TestRunContextStampsProvenance(t *testing.T) {
	req := testRequest("minwi")
	req.Seed = 0
	req.Version = "req-build"
	res, err := RunContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Report().Prov
	if p.Experiment != "minwi" || p.Seed != 0 || p.Scale != req.Scale ||
		p.SimTimeNs != req.SimTimeNs || p.Mixes != req.Mixes || p.Version != "req-build" {
		t.Errorf("provenance = %+v", p)
	}
	if p.Fleet != 0 {
		t.Errorf("minwi stamped Fleet %d, want 0", p.Fleet)
	}
	if p.Title == "" {
		t.Error("provenance missing the registry description")
	}
}

// TestRunEqualsRunContext pins the compatibility wrapper: Run(id, Options)
// and RunContext(Request) produce byte-identical canonical reports for
// equivalent inputs.
func TestRunEqualsRunContext(t *testing.T) {
	opts := Options{Scale: 0.04, Seed: 7, SimTimeNs: 200_000, Mixes: 2, Workers: 2}
	viaOptions, err := Run("fig6", opts)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Experiment: "fig6", Seed: 7, Scale: 0.04, SimTimeNs: 200_000, Mixes: 2}
	viaRequest, err := RunContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	a, err := viaOptions.Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaRequest.Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("Run and RunContext disagree:\n--- Run ---\n%s\n--- RunContext ---\n%s", a, b)
	}
}

func TestRunContextRejectsInvalid(t *testing.T) {
	if _, err := RunContext(context.Background(), Request{Experiment: "fig99", Scale: 1, SimTimeNs: 1, Mixes: 1}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := RunContext(context.Background(), Request{Experiment: "fig6"}); err == nil {
		t.Error("zero-value request accepted (scale 0 must be invalid)")
	}
}

// TestRunContextCancelled pins that a pre-cancelled context aborts the
// run instead of completing it.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, testRequest("fig3")); err == nil {
		t.Error("cancelled context did not abort the run")
	}
}
