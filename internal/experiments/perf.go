package experiments

import (
	"fmt"

	"memcon/internal/dram"
	"memcon/internal/memctrl"
	"memcon/internal/parallel"
	"memcon/internal/report"
	"memcon/internal/sim"
	"memcon/internal/stats"
	"memcon/internal/workload"
)

// densities are the chip capacities of the Fig. 15/16 sweeps.
var densities = []dram.Density{dram.Density8Gb, dram.Density16Gb, dram.Density32Gb}

// baselineMem returns the aggressive-baseline memory configuration: all
// rows at a 16 ms refresh window.
func baselineMem(d dram.Density, seed int64) memctrl.Config {
	cfg := memctrl.DefaultConfig()
	cfg.Density = d
	cfg.Seed = seed
	// The evaluated controller schedules refresh elastically (REF can be
	// postponed past pending demand), as the refresh-optimization work
	// the paper compares against assumes.
	cfg.RefreshPostponeProb = 0.5
	return cfg
}

// memconMem returns the MEMCON memory configuration at the given refresh
// reduction with test traffic injected.
func memconMem(d dram.Density, reduction float64, testsPerWindow int, seed int64) (memctrl.Config, error) {
	cfg := baselineMem(d, seed)
	p, err := memctrl.StretchedRefreshPeriod(dram.RefreshWindowAggressive, reduction)
	if err != nil {
		return memctrl.Config{}, err
	}
	cfg.RefreshPeriod = p
	cfg.TestsPerWindow = testsPerWindow
	return cfg, nil
}

// avgSpeedup runs all mixes and returns the mean weighted speedup of
// scheme over baseline. The mixes are independent simulations, so they
// fan out over the options' worker budget; each mix simulates under its
// own parallel.Seed(opts.Seed, i) stream and the speedups are averaged
// in mix order, so the result is identical for any worker count.
func avgSpeedup(opts Options, mixes [][]workload.CoreParams, base, scheme memctrl.Config) (float64, error) {
	speedups, err := forUnits(opts, len(mixes), func(i int) (float64, error) {
		return sim.MixSpeedup(mixes[i], base, scheme, opts.SimTimeNs, parallel.Seed(opts.Seed, i))
	})
	if err != nil {
		return 0, err
	}
	return stats.Mean(speedups), nil
}

// Fig15Cell is one (cores, density, reduction) speedup.
type Fig15Cell struct {
	Cores     int
	Density   dram.Density
	Reduction float64
	Speedup   float64
}

// Fig15Result reproduces Fig. 15: MEMCON speedup over the 16 ms baseline
// for 60% and 75% refresh reductions, single- and four-core, across
// densities. Test traffic (256 tests per 64 ms) is included, as in the
// paper.
type Fig15Result struct {
	resultMeta
	Cells []Fig15Cell
}

// RunFig15 sweeps the speedup grid.
func RunFig15(opts Options) (Result, error) {
	res := &Fig15Result{}
	for _, cores := range []int{1, 4} {
		mixes := workload.Mixes(opts.Mixes, cores, opts.Seed)
		for _, d := range densities {
			for _, reduction := range []float64{0.60, 0.75} {
				scheme, err := memconMem(d, reduction, 256, opts.Seed)
				if err != nil {
					return nil, err
				}
				s, err := avgSpeedup(opts, mixes, baselineMem(d, opts.Seed), scheme)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, Fig15Cell{Cores: cores, Density: d, Reduction: reduction, Speedup: s})
			}
		}
	}
	return res, nil
}

// Speedup returns the cell for the given parameters, or 0.
func (r *Fig15Result) Speedup(cores int, d dram.Density, reduction float64) float64 {
	for _, c := range r.Cells {
		if c.Cores == cores && c.Density == d && c.Reduction == reduction {
			return c.Speedup
		}
	}
	return 0
}

// Report builds the Fig. 15 document: per-core pivot tables for the
// text rendering, one flat machine table (the pre-typed CSV layout) for
// CSV, JSON, and diffing.
func (r *Fig15Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Primary = "cells"
	rep.Textf("Fig. 15 — MEMCON speedup over baseline (16 ms refresh), incl. 256 tests/64 ms\n\n")
	for _, cores := range []int{1, 4} {
		rep.Textf("%d-core:\n", cores)
		t := report.NewTable(fmt.Sprintf("pivot_%dcore", cores),
			report.CStr("density", ""),
			report.CFloat("r60", "60% reduction", "x"),
			report.CFloat("r75", "75% reduction", "x"))
		for _, d := range densities {
			s60, s75 := r.Speedup(cores, d, 0.60), r.Speedup(cores, d, 0.75)
			t.Add(report.S(d.String()),
				report.F(s60, fmt.Sprintf("%.2fx", s60)),
				report.F(s75, fmt.Sprintf("%.2fx", s75)))
		}
		rep.AddTextTable(t)
		rep.Textf("\n")
	}
	rep.Textf("%s", "paper: 10%/17%/40% to 12%/22%/50% (1-core) and 10%/23%/52% to 17%/29%/65% (4-core) for 8/16/32 Gb\n")
	ct := report.NewTable("cells",
		report.CInt("cores", "", ""),
		report.CStr("density", ""),
		report.CFloat("reduction", "", "fraction"),
		report.CFloat("speedup", "", "x"))
	for _, c := range r.Cells {
		ct.Add(report.I(int64(c.Cores)), report.S(c.Density.String()),
			report.Fv(c.Reduction), report.Fv(c.Speedup))
	}
	rep.AddDataTable(ct)
	return rep
}

// String renders the Fig. 15 report as text.
func (r *Fig15Result) String() string { return r.Report().Text() }

// Table3Cell is one (cores, tests) overhead entry.
type Table3Cell struct {
	Cores int
	Tests int
	// Loss is the fractional performance loss vs zero-overhead testing.
	Loss float64
}

// Table3Result reproduces Table 3: performance loss from the extra
// memory accesses of 256/512/1024 concurrent tests every 64 ms.
type Table3Result struct {
	resultMeta
	Cells []Table3Cell
}

// RunTable3 sweeps test-traffic intensity.
func RunTable3(opts Options) (Result, error) {
	res := &Table3Result{}
	for _, cores := range []int{1, 4} {
		mixes := workload.Mixes(opts.Mixes, cores, opts.Seed)
		// The ideal configuration has MEMCON's refresh reduction but free
		// testing.
		ideal, err := memconMem(dram.Density8Gb, 0.70, 0, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, tests := range []int{256, 512, 1024} {
			loaded := ideal
			loaded.TestsPerWindow = tests
			s, err := avgSpeedup(opts, mixes, ideal, loaded)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Table3Cell{Cores: cores, Tests: tests, Loss: 1 - s})
		}
	}
	return res, nil
}

// Loss returns the cell value for the given parameters, or 0.
func (r *Table3Result) Loss(cores, tests int) float64 {
	for _, c := range r.Cells {
		if c.Cores == cores && c.Tests == tests {
			return c.Loss
		}
	}
	return 0
}

// Report builds the Table 3 document. The first column is unlabeled in
// the text rendering (matching the paper table), so its Column is built
// directly with an empty Label rather than through CStr.
func (r *Table3Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Table 3 — performance loss due to extra accesses for testing\n\n")
	t := report.NewTable("losses",
		report.Column{Name: "config", Kind: report.KindString},
		report.CFloat("t256", "256 tests", "fraction"),
		report.CFloat("t512", "512 tests", "fraction"),
		report.CFloat("t1024", "1024 tests", "fraction"))
	for _, cores := range []int{1, 4} {
		l256, l512, l1024 := r.Loss(cores, 256), r.Loss(cores, 512), r.Loss(cores, 1024)
		t.Add(report.S(fmt.Sprintf("%d-core", cores)),
			report.F(l256, pct2(l256)), report.F(l512, pct2(l512)), report.F(l1024, pct2(l1024)))
	}
	rep.AddTable(t)
	rep.Textf("%s", "\npaper: 0.54%/1.03%/1.88% (1-core), 0.05%/0.09%/0.48% (4-core)\n")
	return rep
}

// String renders the Table 3 report as text.
func (r *Table3Result) String() string { return r.Report().Text() }

// Fig16Cell is one (cores, density, policy) speedup over the 16 ms
// baseline.
type Fig16Cell struct {
	Cores   int
	Density dram.Density
	Policy  string
	Speedup float64
}

// Fig16Result reproduces Fig. 16: 32 ms refresh, RAIDR, MEMCON, and the
// ideal 64 ms refresh, all over the 16 ms baseline.
type Fig16Result struct {
	resultMeta
	Cells []Fig16Cell
}

// fig16Policies maps names to (reduction vs 16 ms baseline, tests).
// 32 ms halves refresh ops (50%); RAIDR keeps 16% of rows at 16 ms
// (63%); MEMCON averages ~70% with test traffic; 64 ms is the 75% ideal.
var fig16Policies = []struct {
	name      string
	reduction float64
	tests     int
}{
	{"32ms", 0.50, 0},
	{"RAIDR", 0.63, 0},
	{"MEMCON", 0.70, 256},
	{"64ms", 0.75, 0},
}

// RunFig16 sweeps refresh policies.
func RunFig16(opts Options) (Result, error) {
	res := &Fig16Result{}
	for _, cores := range []int{1, 4} {
		mixes := workload.Mixes(opts.Mixes, cores, opts.Seed)
		for _, d := range densities {
			base := baselineMem(d, opts.Seed)
			for _, pol := range fig16Policies {
				scheme, err := memconMem(d, pol.reduction, pol.tests, opts.Seed)
				if err != nil {
					return nil, err
				}
				s, err := avgSpeedup(opts, mixes, base, scheme)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, Fig16Cell{Cores: cores, Density: d, Policy: pol.name, Speedup: s})
			}
		}
	}
	return res, nil
}

// Speedup returns the cell for the given parameters, or 0.
func (r *Fig16Result) Speedup(cores int, d dram.Density, policy string) float64 {
	for _, c := range r.Cells {
		if c.Cores == cores && c.Density == d && c.Policy == policy {
			return c.Speedup
		}
	}
	return 0
}

// Report builds the Fig. 16 document: per-core pivots for text, one
// flat machine table for CSV/JSON/diff.
func (r *Fig16Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Primary = "cells"
	rep.Textf("Fig. 16 — speedup over 16 ms baseline, by refresh mechanism\n\n")
	for _, cores := range []int{1, 4} {
		rep.Textf("%d-core:\n", cores)
		cols := []report.Column{report.CStr("density", "")}
		for _, p := range fig16Policies {
			cols = append(cols, report.CFloat(p.name, p.name, "x"))
		}
		t := report.NewTable(fmt.Sprintf("pivot_%dcore", cores), cols...)
		for _, d := range densities {
			row := []report.Cell{report.S(d.String())}
			for _, p := range fig16Policies {
				v := r.Speedup(cores, d, p.name)
				row = append(row, report.F(v, fmt.Sprintf("%.2fx", v)))
			}
			t.Add(row...)
		}
		rep.AddTextTable(t)
		rep.Textf("\n")
	}
	rep.Textf("%s", "expected ordering: 32ms < RAIDR < MEMCON <= 64ms; MEMCON within 3-5% of 64 ms\n")
	ct := report.NewTable("cells",
		report.CInt("cores", "", ""),
		report.CStr("density", ""),
		report.CStr("policy", ""),
		report.CFloat("speedup", "", "x"))
	for _, c := range r.Cells {
		ct.Add(report.I(int64(c.Cores)), report.S(c.Density.String()),
			report.S(c.Policy), report.Fv(c.Speedup))
	}
	rep.AddDataTable(ct)
	return rep
}

// String renders the Fig. 16 report as text.
func (r *Fig16Result) String() string { return r.Report().Text() }
