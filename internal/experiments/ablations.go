package experiments

import (
	"fmt"

	"memcon/internal/core"
	"memcon/internal/costmodel"
	"memcon/internal/dram"
	"memcon/internal/pril"
	"memcon/internal/report"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

// Ablations of the design choices DESIGN.md calls out. They are not
// paper artifacts; they quantify the sensitivity of MEMCON's headline
// metric (refresh reduction) to each knob, plus the effect of the
// footnote-6 test-acceleration variants the paper leaves as future
// work.

func init() {
	registry["abl-buffer"] = entry{RunAblBuffer, "Ablation: PRIL write-buffer capacity (overflow -> HI-REF)", false}
	registry["abl-accel"] = entry{RunAblAccel, "Ablation: Copy-and-Compare acceleration (RowClone / in-DRAM compare)", false}
	registry["abl-pril"] = entry{RunAblPril, "Ablation: buffer-based vs bitmap PRIL implementation", false}
}

// ablTrace generates the reference workload for ablations.
func ablTrace(opts Options) (*trace.Trace, error) {
	app, err := workload.AppByName("AdobePremiere")
	if err != nil {
		return nil, err
	}
	return app.Generate(opts.Seed, opts.Scale), nil
}

// AblBufferRow is one buffer-capacity point.
type AblBufferRow struct {
	Capacity  int
	Reduction float64
	Discards  int64
	Peak      int
}

// AblBufferResult sweeps PRIL's write-buffer capacity.
type AblBufferResult struct {
	resultMeta
	Rows []AblBufferRow
}

// RunAblBuffer sweeps the buffer capacity from unbounded down to
// starvation, measuring the refresh reduction lost to discards. The
// capacities run concurrently against one shared trace — core.Run
// only reads the trace, so the units share it without copies.
func RunAblBuffer(opts Options) (Result, error) {
	tr, err := ablTrace(opts)
	if err != nil {
		return nil, err
	}
	capacities := []int{0, 4000, 1000, 200, 50, 8}
	rows, err := forUnits(opts, len(capacities), func(i int) (AblBufferRow, error) {
		cfg := core.DefaultConfig()
		cfg.BufferCap = capacities[i]
		rep, err := core.RunContext(opts.Ctx, tr, cfg, core.WithObserver(opts.Observer))
		if err != nil {
			return AblBufferRow{}, err
		}
		return AblBufferRow{
			Capacity:  capacities[i],
			Reduction: rep.RefreshReduction(),
			Discards:  rep.Pril.Discards,
			Peak:      rep.Pril.PeakBuffer,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblBufferResult{Rows: rows}, nil
}

// Report builds the buffer-ablation document.
func (r *AblBufferResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Ablation — PRIL write-buffer capacity\n\n")
	t := report.NewTable("rows",
		report.CInt("capacity", "", "entries"),
		report.CFloat("reduction", "", "fraction"),
		report.CInt("discards", "", ""),
		report.CInt("peak", "peak occupancy", "entries"))
	for _, row := range r.Rows {
		capCell := report.I(int64(row.Capacity))
		if row.Capacity == 0 {
			capCell = report.Id(0, "unbounded")
		}
		t.Add(capCell, report.F(row.Reduction, pct(row.Reduction)),
			report.I(row.Discards), report.I(int64(row.Peak)))
	}
	rep.AddTable(t)
	rep.Textf("\npaper sizes the buffer at ~4000 entries (§6.4); the sweep shows how much\nreduction survives under-provisioning (discarded pages stay at HI-REF)\n")
	return rep
}

// String renders the buffer ablation as text.
func (r *AblBufferResult) String() string { return r.Report().Text() }

// AblAccelRow is one acceleration variant.
type AblAccelRow struct {
	Accel            costmodel.Accel
	TestCost         dram.Nanoseconds
	MinWriteInterval dram.Nanoseconds
}

// AblAccelResult quantifies footnote 6's acceleration variants.
type AblAccelResult struct {
	resultMeta
	Rows []AblAccelRow
}

// RunAblAccel computes test cost and MinWriteInterval per acceleration.
func RunAblAccel(Options) (Result, error) {
	res := &AblAccelResult{}
	for _, a := range []costmodel.Accel{costmodel.NoAccel, costmodel.RowCloneCopy, costmodel.InDRAMCompare} {
		cfg, err := costmodel.NewAcceleratedConfig(costmodel.DefaultConfig(), a)
		if err != nil {
			return nil, err
		}
		mwi, err := cfg.MinWriteInterval()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblAccelRow{Accel: a, TestCost: cfg.TestCost(), MinWriteInterval: mwi})
	}
	return res, nil
}

// Report builds the acceleration-ablation document.
func (r *AblAccelResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Ablation — Copy-and-Compare acceleration (paper footnote 6, future work)\n\n")
	t := report.NewTable("rows",
		report.CStr("variant", ""),
		report.CInt("test_cost_ns", "test cost", "ns"),
		report.CInt("min_write_interval_ms", "MinWriteInterval", "ms"))
	for _, row := range r.Rows {
		t.Add(report.S(row.Accel.String()),
			report.Id(int64(row.TestCost), fmt.Sprintf("%d ns", row.TestCost)),
			report.Id(int64(row.MinWriteInterval/dram.Millisecond), fmt.Sprintf("%d ms", row.MinWriteInterval/dram.Millisecond)))
	}
	rep.AddTable(t)
	rep.Textf("\nin-DRAM copy/compare (RowClone/LISA/PIM) shrinks the amortization threshold,\nletting MEMCON exploit shorter write intervals\n")
	return rep
}

// String renders the acceleration ablation as text.
func (r *AblAccelResult) String() string { return r.Report().Text() }

// AblPrilResult compares the two PRIL implementations.
type AblPrilResult struct {
	resultMeta
	BufferPredictions int
	BitmapPredictions int
	Identical         bool
	BufferBits        int
	BitmapBits        int
}

// RunAblPril verifies that the bitmap implementation (future work:
// "cheaper implementations of PRIL") is prediction-equivalent to the
// buffer design and compares storage.
func RunAblPril(opts Options) (Result, error) {
	tr, err := ablTrace(opts)
	if err != nil {
		return nil, err
	}
	cfg := pril.Config{Quantum: 1024 * trace.Millisecond, NumPages: tr.MaxPage() + 1}
	a, _, err := pril.Run(tr, cfg)
	if err != nil {
		return nil, err
	}
	b, _, err := pril.RunBitmap(tr, cfg)
	if err != nil {
		return nil, err
	}
	identical := len(a) == len(b)
	if identical {
		seen := map[pril.Prediction]int{}
		for _, p := range a {
			seen[p]++
		}
		for _, p := range b {
			seen[p]--
		}
		for _, v := range seen {
			if v != 0 {
				identical = false
				break
			}
		}
	}
	pages := tr.MaxPage() + 1
	return &AblPrilResult{
		BufferPredictions: len(a),
		BitmapPredictions: len(b),
		Identical:         identical,
		BufferBits:        pril.StorageBitsBuffer(pages, 4000),
		BitmapBits:        pril.StorageBitsBitmap(pages),
	}, nil
}

// Report builds the PRIL-implementation ablation document.
func (r *AblPrilResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Ablation — PRIL implementation (buffer CAM vs bitmap scan)\n\n")
	t := report.NewTable("rows",
		report.CStr("implementation", ""),
		report.CInt("predictions", "", ""),
		report.CInt("storage_bits", "storage (bits)", "bits"))
	t.Add(report.S("write-buffer (paper)"), report.I(int64(r.BufferPredictions)), report.I(int64(r.BufferBits)))
	t.Add(report.S("bitmap (this repo)"), report.I(int64(r.BitmapPredictions)), report.I(int64(r.BitmapBits)))
	rep.AddTable(t)
	rep.Textf("\nprediction-equivalent: %v (bitmap eliminates the CAM at 2 extra bits/page)\n", r.Identical)
	st := report.NewTable("summary", report.CBool("identical", ""))
	st.Add(report.B(r.Identical))
	rep.AddDataTable(st)
	return rep
}

// String renders the PRIL-implementation ablation as text.
func (r *AblPrilResult) String() string { return r.Report().Text() }
