package experiments

import (
	"fmt"
	"strings"

	"memcon/internal/core"
	"memcon/internal/costmodel"
	"memcon/internal/dram"
	"memcon/internal/pril"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

// Ablations of the design choices DESIGN.md calls out. They are not
// paper artifacts; they quantify the sensitivity of MEMCON's headline
// metric (refresh reduction) to each knob, plus the effect of the
// footnote-6 test-acceleration variants the paper leaves as future
// work.

func init() {
	registry["abl-buffer"] = struct {
		runner Runner
		desc   string
	}{RunAblBuffer, "Ablation: PRIL write-buffer capacity (overflow -> HI-REF)"}
	registry["abl-accel"] = struct {
		runner Runner
		desc   string
	}{RunAblAccel, "Ablation: Copy-and-Compare acceleration (RowClone / in-DRAM compare)"}
	registry["abl-pril"] = struct {
		runner Runner
		desc   string
	}{RunAblPril, "Ablation: buffer-based vs bitmap PRIL implementation"}
}

// ablTrace generates the reference workload for ablations.
func ablTrace(opts Options) (*trace.Trace, error) {
	app, err := workload.AppByName("AdobePremiere")
	if err != nil {
		return nil, err
	}
	return app.Generate(opts.Seed, opts.Scale), nil
}

// AblBufferRow is one buffer-capacity point.
type AblBufferRow struct {
	Capacity  int
	Reduction float64
	Discards  int64
	Peak      int
}

// AblBufferResult sweeps PRIL's write-buffer capacity.
type AblBufferResult struct{ Rows []AblBufferRow }

// RunAblBuffer sweeps the buffer capacity from unbounded down to
// starvation, measuring the refresh reduction lost to discards. The
// capacities run concurrently against one shared trace — core.Run
// only reads the trace, so the units share it without copies.
func RunAblBuffer(opts Options) (fmt.Stringer, error) {
	tr, err := ablTrace(opts)
	if err != nil {
		return nil, err
	}
	capacities := []int{0, 4000, 1000, 200, 50, 8}
	rows, err := forUnits(opts, len(capacities), func(i int) (AblBufferRow, error) {
		cfg := core.DefaultConfig()
		cfg.BufferCap = capacities[i]
		rep, err := core.RunContext(opts.Ctx, tr, cfg, core.WithObserver(opts.Observer))
		if err != nil {
			return AblBufferRow{}, err
		}
		return AblBufferRow{
			Capacity:  capacities[i],
			Reduction: rep.RefreshReduction(),
			Discards:  rep.Pril.Discards,
			Peak:      rep.Pril.PeakBuffer,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblBufferResult{Rows: rows}, nil
}

// String renders the buffer ablation.
func (r *AblBufferResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — PRIL write-buffer capacity\n\n")
	t := &table{header: []string{"capacity", "reduction", "discards", "peak occupancy"}}
	for _, row := range r.Rows {
		name := fmt.Sprintf("%d", row.Capacity)
		if row.Capacity == 0 {
			name = "unbounded"
		}
		t.addRow(name, pct(row.Reduction), fmt.Sprintf("%d", row.Discards), fmt.Sprintf("%d", row.Peak))
	}
	b.WriteString(t.String())
	b.WriteString("\npaper sizes the buffer at ~4000 entries (§6.4); the sweep shows how much\nreduction survives under-provisioning (discarded pages stay at HI-REF)\n")
	return b.String()
}

// AblAccelRow is one acceleration variant.
type AblAccelRow struct {
	Accel            costmodel.Accel
	TestCost         dram.Nanoseconds
	MinWriteInterval dram.Nanoseconds
}

// AblAccelResult quantifies footnote 6's acceleration variants.
type AblAccelResult struct{ Rows []AblAccelRow }

// RunAblAccel computes test cost and MinWriteInterval per acceleration.
func RunAblAccel(Options) (fmt.Stringer, error) {
	res := &AblAccelResult{}
	for _, a := range []costmodel.Accel{costmodel.NoAccel, costmodel.RowCloneCopy, costmodel.InDRAMCompare} {
		cfg, err := costmodel.NewAcceleratedConfig(costmodel.DefaultConfig(), a)
		if err != nil {
			return nil, err
		}
		mwi, err := cfg.MinWriteInterval()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblAccelRow{Accel: a, TestCost: cfg.TestCost(), MinWriteInterval: mwi})
	}
	return res, nil
}

// String renders the acceleration ablation.
func (r *AblAccelResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — Copy-and-Compare acceleration (paper footnote 6, future work)\n\n")
	t := &table{header: []string{"variant", "test cost", "MinWriteInterval"}}
	for _, row := range r.Rows {
		t.addRow(row.Accel.String(),
			fmt.Sprintf("%d ns", row.TestCost),
			fmt.Sprintf("%d ms", row.MinWriteInterval/dram.Millisecond))
	}
	b.WriteString(t.String())
	b.WriteString("\nin-DRAM copy/compare (RowClone/LISA/PIM) shrinks the amortization threshold,\nletting MEMCON exploit shorter write intervals\n")
	return b.String()
}

// AblPrilResult compares the two PRIL implementations.
type AblPrilResult struct {
	BufferPredictions int
	BitmapPredictions int
	Identical         bool
	BufferBits        int
	BitmapBits        int
}

// RunAblPril verifies that the bitmap implementation (future work:
// "cheaper implementations of PRIL") is prediction-equivalent to the
// buffer design and compares storage.
func RunAblPril(opts Options) (fmt.Stringer, error) {
	tr, err := ablTrace(opts)
	if err != nil {
		return nil, err
	}
	cfg := pril.Config{Quantum: 1024 * trace.Millisecond, NumPages: tr.MaxPage() + 1}
	a, _, err := pril.Run(tr, cfg)
	if err != nil {
		return nil, err
	}
	b, _, err := pril.RunBitmap(tr, cfg)
	if err != nil {
		return nil, err
	}
	identical := len(a) == len(b)
	if identical {
		seen := map[pril.Prediction]int{}
		for _, p := range a {
			seen[p]++
		}
		for _, p := range b {
			seen[p]--
		}
		for _, v := range seen {
			if v != 0 {
				identical = false
				break
			}
		}
	}
	pages := tr.MaxPage() + 1
	return &AblPrilResult{
		BufferPredictions: len(a),
		BitmapPredictions: len(b),
		Identical:         identical,
		BufferBits:        pril.StorageBitsBuffer(pages, 4000),
		BitmapBits:        pril.StorageBitsBitmap(pages),
	}, nil
}

// String renders the PRIL-implementation ablation.
func (r *AblPrilResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — PRIL implementation (buffer CAM vs bitmap scan)\n\n")
	t := &table{header: []string{"implementation", "predictions", "storage (bits)"}}
	t.addRow("write-buffer (paper)", fmt.Sprintf("%d", r.BufferPredictions), fmt.Sprintf("%d", r.BufferBits))
	t.addRow("bitmap (this repo)", fmt.Sprintf("%d", r.BitmapPredictions), fmt.Sprintf("%d", r.BitmapBits))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nprediction-equivalent: %v (bitmap eliminates the CAM at 2 extra bits/page)\n", r.Identical)
	return b.String()
}
