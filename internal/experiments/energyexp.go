package experiments

import (
	"fmt"

	"memcon/internal/core"
	"memcon/internal/costmodel"
	"memcon/internal/dram"
	"memcon/internal/energy"
	"memcon/internal/report"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

func init() {
	registry["energy"] = entry{RunEnergy, "Extension: DRAM energy by refresh mechanism (the paper claims, we quantify)", false}
}

// EnergyRow is one policy's energy outcome.
type EnergyRow struct {
	Policy    string
	Breakdown energy.Breakdown
	Savings   float64
}

// EnergyResult compares refresh mechanisms in DRAM energy over the
// MEMCON workload set, using each policy's refresh-operation count and
// MEMCON's measured testing traffic.
type EnergyResult struct {
	resultMeta
	Rows []EnergyRow
	// MemconRefreshReduction is the measured reduction feeding the
	// MEMCON row.
	MemconRefreshReduction float64
	// LatencyMWI and EnergyMWI are the amortization crossovers in the
	// two cost domains.
	LatencyMWI dram.Nanoseconds
	EnergyMWI  dram.Nanoseconds
}

// RunEnergy measures refresh+testing energy per policy on one
// representative workload (the averages across workloads track the
// refresh reduction, which Fig. 14 already sweeps). Like Fig. 18, the
// module is modelled as the written footprint plus 9x read-only rows.
// Savings are reported over the CONTROLLABLE energy (refresh + testing);
// background power is shown for context but no refresh policy moves it.
func RunEnergy(opts Options) (Result, error) {
	app, err := workload.AppByName("AdobePremiere")
	if err != nil {
		return nil, err
	}
	tr := app.Generate(opts.Seed, opts.Scale)
	cfg := core.DefaultConfig()
	cfg.Quantum = 1024 * trace.Millisecond
	cfg.ReadOnlyRows = 9 * (tr.MaxPage() + 1)
	rep, err := core.RunContext(opts.Ctx, tr, cfg, core.WithObserver(opts.Observer))
	if err != nil {
		return nil, err
	}

	budget := energy.DDR3Budget()
	durNs := dram.Nanoseconds(rep.Duration) * dram.Microsecond
	pages := rep.Pages
	baseOps := rep.BaselineOps

	mkTally := func(refreshOps float64, testCycles int64) energy.Tally {
		return energy.Tally{
			RefreshOps:    refreshOps,
			TestRowCycles: testCycles,
			Duration:      durNs,
			BlocksPerRow:  128,
		}
	}
	policies := []struct {
		name  string
		ops   float64
		tests int64
	}{
		{"16ms baseline", baseOps, 0},
		{"32ms", baseOps / 2, 0},
		{"RAIDR", baseOps * (1 - 0.63), 0},
		{"MEMCON", rep.RefreshOps, 2 * rep.TestsCompleted}, // Read-and-Compare: 2 row cycles per test
		{"64ms ideal", rep.UpperBoundOps, 0},
	}
	res := &EnergyResult{MemconRefreshReduction: rep.RefreshReduction()}
	cm := costmodel.DefaultConfig()
	if res.LatencyMWI, err = cm.MinWriteInterval(); err != nil {
		return nil, err
	}
	if res.EnergyMWI, err = cm.EnergyMinWriteInterval(costmodel.DefaultEnergyCosts()); err != nil {
		return nil, err
	}
	var baseControllable float64
	for i, p := range policies {
		bd, err := energy.Compute(budget, mkTally(p.ops, p.tests))
		if err != nil {
			return nil, err
		}
		controllable := bd.RefreshMJ + bd.TestingMJ
		if i == 0 {
			baseControllable = controllable
		}
		saving := 0.0
		if baseControllable > 0 {
			saving = 1 - controllable/baseControllable
		}
		res.Rows = append(res.Rows, EnergyRow{
			Policy:    p.name,
			Breakdown: bd,
			Savings:   saving,
		})
	}
	_ = pages
	return res, nil
}

// Report builds the energy-comparison document.
func (r *EnergyResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Extension — DRAM energy by refresh mechanism\n\n")
	t := report.NewTable("rows",
		report.CStr("policy", ""),
		report.CFloat("refresh_mj", "refresh (mJ)", "mJ"),
		report.CFloat("testing_mj", "testing (mJ)", "mJ"),
		report.CFloat("background_mj", "background (mJ)", "mJ"),
		report.CFloat("total_mj", "total (mJ)", "mJ"),
		report.CFloat("savings", "", "fraction"))
	for _, row := range r.Rows {
		t.Add(report.S(row.Policy),
			report.F(row.Breakdown.RefreshMJ, fmt.Sprintf("%.1f", row.Breakdown.RefreshMJ)),
			report.F(row.Breakdown.TestingMJ, fmt.Sprintf("%.3f", row.Breakdown.TestingMJ)),
			report.F(row.Breakdown.BackgroundMJ, fmt.Sprintf("%.1f", row.Breakdown.BackgroundMJ)),
			report.F(row.Breakdown.Total(), fmt.Sprintf("%.1f", row.Breakdown.Total())),
			report.F(row.Savings, pct(row.Savings)))
	}
	rep.AddTable(t)
	rep.Textf("\nMEMCON refresh reduction feeding this table: %s\n", pct(r.MemconRefreshReduction))
	rep.Textf("savings are over controllable (refresh+testing) energy; background power is\n")
	rep.Textf("policy-invariant. the paper claims energy benefits without quantifying them;\n")
	rep.Textf("this extension does — a full-row test costs ~50 refresh ops in energy, so the\nenergy-optimal MinWriteInterval is %d ms vs the latency-optimal %d ms\n",
		r.EnergyMWI/dram.Millisecond, r.LatencyMWI/dram.Millisecond)
	st := report.NewTable("summary",
		report.CFloat("memcon_refresh_reduction", "", "fraction"),
		report.CInt("latency_mwi_ms", "", "ms"),
		report.CInt("energy_mwi_ms", "", "ms"))
	st.Add(report.Fv(r.MemconRefreshReduction),
		report.I(int64(r.LatencyMWI/dram.Millisecond)),
		report.I(int64(r.EnergyMWI/dram.Millisecond)))
	rep.AddDataTable(st)
	return rep
}

// String renders the energy comparison as text.
func (r *EnergyResult) String() string { return r.Report().Text() }
