package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"memcon/internal/dram"
	"memcon/internal/obs"
	"memcon/internal/refresh"
	"memcon/internal/report"
)

// Request is the canonical, serializable description of one experiment
// run: exactly the inputs that determine the report's bytes, and
// nothing else. It is the unit of the serving API (cmd/memcond) and of
// result caching — Normalize produces the canonical form and CacheKey
// hashes it, so two requests with the same key always yield
// byte-identical canonical report JSON.
//
// Every field is literal: a zero Seed means seed 0, never "use the
// default". Defaults enter only at construction — DefaultRequest fills
// them, and JSON bodies are decoded ONTO a default request so absent
// fields keep their defaults while present ones (including an explicit
// zero seed) stick. This replaces the Options.SeedSet flag, whose whole
// job was to disambiguate "unset" from "zero" inside one struct.
//
// Execution knobs that do not affect the bytes (worker count,
// observers, phase timers) are deliberately absent; they live in
// Runtime.
type Request struct {
	// Experiment is the registry id (fig14, table3, fleet-risk, ...).
	Experiment string `json:"experiment"`
	// Seed drives all randomness. Literal: zero is seed 0.
	Seed int64 `json:"seed"`
	// Scale shrinks workload sizes; must lie in (0,1].
	Scale float64 `json:"scale"`
	// SimTimeNs bounds performance-simulation runs (per configuration).
	SimTimeNs int64 `json:"simtime_ns"`
	// Mixes is the multiprogrammed-mix count for performance runs.
	Mixes int `json:"mixes"`
	// Fleet is the module count for fleet-scale experiments. Normalize
	// zeroes it for experiments that ignore it and derives the
	// scale-proportional default (160 at scale 1, floor 4) when a fleet
	// experiment leaves it below 1, so the canonical form never carries
	// an input the numbers do not depend on.
	Fleet int `json:"fleet,omitempty"`
	// Mapping names the vendor address-mapping scheme for chip-level
	// experiments (dram.MappingNames lists the registry). Normalize
	// canonicalizes "default" to "" and zeroes the field for experiments
	// that build no chips, so the canonical form — and therefore the
	// cache key — never carries a mapping the numbers do not depend on.
	Mapping string `json:"mapping,omitempty"`
	// Disturb is the RowHammer mitigation spec for read-disturb
	// experiments (refresh.ParseMitigation syntax). Normalize
	// canonicalizes "none" (and parameter spellings) and zeroes the
	// field for experiments that simulate no disturbance, so the
	// canonical form — and therefore the cache key — never carries a
	// mitigation the numbers do not depend on.
	Disturb string `json:"disturb,omitempty"`
	// Version is an opaque build identifier stamped into report
	// provenance. It never influences the numbers, but it does appear
	// in the report bytes, so it participates in the cache key.
	Version string `json:"version,omitempty"`
}

// DefaultRequest returns the full-scale request for an experiment id —
// the same defaults DefaultOptions carries. Decode JSON request bodies
// onto this value so absent fields default and present fields (even
// explicit zeros) win.
func DefaultRequest(id string) Request {
	d := DefaultOptions()
	return Request{
		Experiment: id,
		Seed:       d.Seed,
		Scale:      d.Scale,
		SimTimeNs:  d.SimTimeNs,
		Mixes:      d.Mixes,
	}
}

// RequestFromProvenance reconstructs the request that produced a saved
// report, field for field. Because Provenance and Request carry the
// same input set, the round trip saved → Request → Normalize → run
// reproduces the saved provenance exactly; a new provenance field only
// survives review by being added to both structs and this function,
// which is what keeps -diff re-runs from silently default-drifting.
func RequestFromProvenance(p report.Provenance) Request {
	return Request{
		Experiment: p.Experiment,
		Seed:       p.Seed,
		Scale:      p.Scale,
		SimTimeNs:  p.SimTimeNs,
		Mixes:      p.Mixes,
		Fleet:      p.Fleet,
		Mapping:    p.Mapping,
		Disturb:    p.Disturb,
		Version:    p.Version,
	}
}

// deriveFleet is the scale-proportional fleet-size default shared by
// Request.Normalize and Options.normalize.
func deriveFleet(scale float64) int {
	n := int(160*scale + 0.5)
	if n < 4 {
		n = 4
	}
	return n
}

// Normalize validates the request and rewrites it into canonical form.
// It is strict where Options.normalize was forgiving: out-of-range
// inputs are errors, not silent substitutions, because a served request
// that quietly ran with different numbers than asked for would poison
// the content-addressed cache. The only rewrite is the Fleet
// canonicalization (zero for experiments that ignore it, derived
// default for fleet experiments that leave it unset).
func (r *Request) Normalize() error {
	e, ok := registry[r.Experiment]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %s)", r.Experiment, strings.Join(IDs(), ", "))
	}
	if r.Scale <= 0 || r.Scale > 1 {
		return fmt.Errorf("experiments: scale %v out of range (0,1]", r.Scale)
	}
	if r.SimTimeNs <= 0 {
		return fmt.Errorf("experiments: simtime_ns %d must be positive", r.SimTimeNs)
	}
	if r.Mixes <= 0 {
		return fmt.Errorf("experiments: mixes %d must be positive", r.Mixes)
	}
	if r.Fleet < 0 {
		return fmt.Errorf("experiments: fleet %d must be non-negative", r.Fleet)
	}
	if !e.fleet {
		r.Fleet = 0
	} else if r.Fleet < 1 {
		r.Fleet = deriveFleet(r.Scale)
	}
	// "default" and "" select the same scrambler; canonicalize to ""
	// so both spellings share a cache key (and the default keeps the
	// exact pre-mapping key bytes).
	if r.Mapping == dram.DefaultMappingName {
		r.Mapping = ""
	}
	if !mappedExperiments[r.Experiment] {
		r.Mapping = ""
	} else if !dram.KnownMapping(r.Mapping) {
		return fmt.Errorf("experiments: unknown address mapping %q (known: %s)",
			r.Mapping, strings.Join(dram.MappingNames(), ", "))
	}
	if !disturbExperiments[r.Experiment] {
		r.Disturb = ""
	} else {
		// "none" and parameter spellings collapse to one canonical form
		// so equivalent requests share a cache key (and no mitigation
		// keeps the exact pre-disturb key bytes).
		spec, err := refresh.CanonicalMitigationSpec(r.Disturb)
		if err != nil {
			return err
		}
		r.Disturb = spec
	}
	return nil
}

// cacheKeyDomain versions the CacheKey byte layout itself; bump it if
// the serialization below ever changes shape.
const cacheKeyDomain = "memcon-request-v1"

// CacheKey returns the SHA-256 content address of the request: a hash
// over the canonicalized (experiment, seed, scale, simtime, mixes,
// fleet, mapping, version) tuple plus the report schema version. Two normalized
// requests share a key exactly when their canonical report JSON is
// byte-identical, which is what lets cmd/memcond serve repeat requests
// from the cache without re-running anything.
//
// Call Normalize first: the key hashes the fields literally, so a
// non-canonical request (for example a stray Fleet on a single-module
// experiment) keys differently from its canonical form.
//
// The digest is part of the public serving contract — the golden test
// over testdata/cachekeys.txt pins it, so any change here (or to the
// report schema) must be a conscious bump, never an accident.
func (r Request) CacheKey() [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", cacheKeyDomain)
	fmt.Fprintf(h, "schema=%d\n", report.SchemaVersion)
	fmt.Fprintf(h, "experiment=%s\n", r.Experiment)
	fmt.Fprintf(h, "seed=%d\n", r.Seed)
	// 'x' renders the exact bit pattern (hex mantissa); two scales hash
	// alike only when they are the same float64.
	fmt.Fprintf(h, "scale=%s\n", strconv.FormatFloat(r.Scale, 'x', -1, 64))
	fmt.Fprintf(h, "simtime_ns=%d\n", r.SimTimeNs)
	fmt.Fprintf(h, "mixes=%d\n", r.Mixes)
	fmt.Fprintf(h, "fleet=%d\n", r.Fleet)
	fmt.Fprintf(h, "version=%s\n", r.Version)
	// Appended conditionally so every pre-mapping request — including
	// all 28 pinned golden keys — hashes the exact same bytes as before
	// the field existed. Normalize canonicalizes the default mapping to
	// "", so only genuinely non-default requests take the new line.
	if r.Mapping != "" {
		fmt.Fprintf(h, "mapping=%s\n", r.Mapping)
	}
	// Same conditional-append contract as Mapping: Normalize zeroes the
	// spec for non-disturb experiments and canonicalizes "none" to "",
	// so every pre-disturb request hashes its exact historical bytes.
	if r.Disturb != "" {
		fmt.Fprintf(h, "disturb=%s\n", r.Disturb)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// KeyHex renders the cache key as lowercase hex, the form the serving
// API exposes in headers and the golden file pins.
func (r Request) KeyHex() string {
	k := r.CacheKey()
	return fmt.Sprintf("%x", k[:])
}

// MarshalCanonical encodes the request as one-line canonical JSON
// (struct field order, no indentation). Normalized requests with equal
// fields encode byte-identically.
func (r Request) MarshalCanonical() ([]byte, error) {
	return json.Marshal(r)
}

// Runtime carries the execution knobs of one run — everything that
// shapes how an experiment executes without affecting its report bytes.
// The zero value is ready to use.
type Runtime struct {
	// Workers bounds the fan-out of the parallel sweep loops; values
	// below 1 select runtime.GOMAXPROCS(0). Reports are byte-identical
	// for any value.
	Workers int
	// Observer receives the structured lifecycle events of every engine
	// the run drives; it must be safe for concurrent use.
	Observer obs.Observer
	// Phases, when set, records per-experiment wall time.
	Phases *obs.PhaseTimer
}

// RunContext executes the experiment described by req under ctx and
// stamps the result's provenance with the normalized inputs. It is the
// context-aware, request-based entrypoint the serving daemon uses;
// Run(id, Options) remains as a thin compatibility wrapper over it.
func RunContext(ctx context.Context, req Request) (Result, error) {
	return RunRequest(ctx, req, Runtime{})
}

// RunRequest is RunContext with explicit runtime knobs.
func RunRequest(ctx context.Context, req Request, rt Runtime) (Result, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e := registry[req.Experiment]
	if rt.Phases != nil {
		defer rt.Phases.Start(req.Experiment)()
	}
	opts := Options{
		Scale:     req.Scale,
		Seed:      req.Seed,
		SeedSet:   true,
		SimTimeNs: req.SimTimeNs,
		Mixes:     req.Mixes,
		Fleet:     req.Fleet,
		Mapping:   req.Mapping,
		Disturb:   req.Disturb,
		Workers:   rt.Workers,
		Version:   req.Version,
		Ctx:       ctx,
		Observer:  rt.Observer,
	}
	res, err := e.runner(opts.normalize())
	if err != nil {
		return nil, err
	}
	res.setProvenance(report.Provenance{
		Experiment: req.Experiment,
		Title:      e.desc,
		Seed:       req.Seed,
		Scale:      req.Scale,
		SimTimeNs:  req.SimTimeNs,
		Mixes:      req.Mixes,
		Fleet:      req.Fleet,
		Mapping:    req.Mapping,
		Disturb:    req.Disturb,
		Version:    req.Version,
	})
	return res, nil
}
