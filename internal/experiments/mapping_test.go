package experiments

import (
	"context"
	"strings"
	"testing"

	"memcon/internal/dram"
)

// TestNormalizeCanonicalizesMapping pins the mapping rewrites: the
// default spelling collapses to "", experiments that build no chips
// drop the field entirely (so a stray -mapping cannot fork their cache
// keys), and unknown names on chip-level experiments are errors naming
// the registry.
func TestNormalizeCanonicalizesMapping(t *testing.T) {
	r := DefaultRequest("fig3")
	r.Mapping = dram.DefaultMappingName
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Mapping != "" {
		t.Errorf(`"default" normalized to %q, want ""`, r.Mapping)
	}

	r = DefaultRequest("fig3")
	r.Mapping = "gray"
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Mapping != "gray" {
		t.Errorf("explicit mapping rewritten to %q", r.Mapping)
	}

	r = DefaultRequest("fig14") // trace-driven: builds no chips
	r.Mapping = "gray"
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Mapping != "" {
		t.Errorf("non-chip experiment kept mapping %q, want dropped", r.Mapping)
	}

	r = DefaultRequest("fig3")
	r.Mapping = "zigzag"
	err := r.Normalize()
	if err == nil || !strings.Contains(err.Error(), "unknown address mapping") {
		t.Errorf("Normalize with unknown mapping = %v, want error", err)
	}
}

// TestCacheKeyMappingCompatible pins the serving contract extension:
// the canonical default-mapping request hashes the exact bytes it
// hashed before the Mapping field existed (the golden file over
// testdata/cachekeys.txt double-checks this for all pinned requests),
// while each non-default mapping keys differently.
func TestCacheKeyMappingCompatible(t *testing.T) {
	base := testRequest("fig3")
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	keys := map[string]string{"": base.KeyHex()}
	for _, m := range []string{"gray", "linear", "mirror"} {
		r := testRequest("fig3")
		r.Mapping = m
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		hex := r.KeyHex()
		for prev, k := range keys {
			if k == hex {
				t.Errorf("mapping %q collides with %q (key %s)", m, prev, hex)
			}
		}
		keys[m] = hex
	}

	// "default" and "" must share a key — they are the same request.
	r := testRequest("fig3")
	r.Mapping = dram.DefaultMappingName
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.KeyHex() != keys[""] {
		t.Error(`"default" and "" key differently after Normalize`)
	}
}

// TestMappingChangesChipNumbers is the end-to-end check that the
// selector actually reaches the silicon: the same chip-level experiment
// run under two mappings must report different numbers (the weak-cell
// population is seeded in physical space, so relocating system rows
// changes which content patterns excite which cells), and the stamped
// provenance must record the mapping that produced them.
func TestMappingChangesChipNumbers(t *testing.T) {
	run := func(mapping string) string {
		req := DefaultRequest("fig3")
		req.Scale = 0.04
		req.Mapping = mapping
		res, err := RunContext(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Report()
		if rep.Prov.Mapping != mapping {
			t.Errorf("mapping %q: provenance records %q", mapping, rep.Prov.Mapping)
		}
		return res.String()
	}
	def := run("")
	gray := run("gray")
	if def == gray {
		t.Error("fig3 output identical under default and gray mappings; selector not reaching the chip")
	}
}
