package experiments

import (
	"math/rand"

	"memcon/internal/core"
	"memcon/internal/dram"
	"memcon/internal/memctrl"
	"memcon/internal/report"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

func init() {
	registry["loop"] = entry{RunClosedLoop, "Closed loop: simulate a system, capture its bus trace (HMTT-style), feed MEMCON", false}
}

// ClosedLoopResult is the end-to-end pipeline outcome: a simulated
// multiprogrammed system's memory traffic, captured at the bus the way
// the paper's HMTT infrastructure captures it, drives the MEMCON engine
// directly.
type ClosedLoopResult struct {
	resultMeta
	CapturedWrites int
	CapturedReads  int
	Pages          int
	// Core is the MEMCON engine report for the captured write trace.
	Core     core.Report
	ReadSkip core.ReadSkipReport
	Combined float64
}

// RunClosedLoop simulates bursty multiprogrammed traffic against the
// memory controller with an attached tracer, then runs MEMCON (and the
// read-aware analysis) on the captured traces.
func RunClosedLoop(opts Options) (Result, error) {
	memCfg := memctrl.DefaultConfig()
	memCfg.Seed = opts.Seed
	ctrl, err := memctrl.New(memCfg)
	if err != nil {
		return nil, err
	}
	tracer := memctrl.NewBusTracer(memCfg.Banks)
	tracer.CaptureReads = true
	ctrl.AttachTracer(tracer)

	// Bursty synthetic system: pages receive a write-back burst once,
	// then only reads — compressed to seconds so the capture stays
	// cheap, with the quantum scaled to match.
	rng := rand.New(rand.NewSource(opts.Seed))
	bench := workload.SimBenchmarks()
	pages := int(2000 * opts.Scale)
	if pages < 64 {
		pages = 64
	}
	at := dram.Nanoseconds(0)
	horizon := 4 * dram.Second
	for p := 0; p < pages; p++ {
		b := bench[p%len(bench)]
		start := dram.Nanoseconds(rng.Int63n(int64(dram.Second)))
		// One write-back burst per page.
		t := start
		for w := 0; w < 1+rng.Intn(2); w++ {
			if _, err := ctrl.Access(t, p%memCfg.Banks, p/memCfg.Banks, true); err != nil {
				return nil, err
			}
			t += dram.Microsecond
		}
		// Reads sprinkled through the rest of the horizon.
		reads := 2 + int(b.MPKI/4)
		for rdx := 0; rdx < reads; rdx++ {
			rt := start + dram.Nanoseconds(rng.Int63n(int64(horizon-start)))
			if rt > at {
				at = rt
			}
			if _, err := ctrl.Access(rt, p%memCfg.Banks, p/memCfg.Banks, false); err != nil {
				return nil, err
			}
		}
	}

	writes := tracer.WriteTrace("closed-loop", horizon)
	reads := tracer.ReadTrace("closed-loop-reads", horizon)

	// The compressed 4 s horizon uses a proportionally compressed
	// quantum (the statistics, not the wall-clock, are what matter).
	cfg := core.DefaultConfig()
	cfg.Quantum = 256 * trace.Millisecond
	rep, err := core.RunContext(opts.Ctx, writes, cfg, core.WithObserver(opts.Observer))
	if err != nil {
		return nil, err
	}
	rs, err := core.ReadSkipAnalysis(reads, dram.RefreshWindowDefault)
	if err != nil {
		return nil, err
	}
	return &ClosedLoopResult{
		CapturedWrites: len(writes.Events),
		CapturedReads:  len(reads.Events),
		Pages:          writes.Pages(),
		Core:           rep,
		ReadSkip:       rs,
		Combined:       core.CombinedSavings(rep, rs),
	}, nil
}

// Report builds the closed-loop document. The stage column mixes counts
// and fractions, so the machine-facing value column is a float.
func (r *ClosedLoopResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Closed loop — simulate, capture at the bus, run MEMCON on the capture\n\n")
	t := report.NewTable("rows",
		report.CStr("stage", ""),
		report.CFloat("result", "", ""))
	t.Add(report.S("captured write-backs"), report.F(float64(r.CapturedWrites), itoa(r.CapturedWrites)))
	t.Add(report.S("captured reads"), report.F(float64(r.CapturedReads), itoa(r.CapturedReads)))
	t.Add(report.S("pages"), report.F(float64(r.Pages), itoa(r.Pages)))
	t.Add(report.S("MEMCON refresh reduction"), report.F(r.Core.RefreshReduction(), pct(r.Core.RefreshReduction())))
	t.Add(report.S("read-skip coverage"), report.F(r.ReadSkip.SkipFraction(), pct(r.ReadSkip.SkipFraction())))
	t.Add(report.S("combined savings"), report.F(r.Combined, pct(r.Combined)))
	rep.AddTable(t)
	rep.Textf("\nthe same pipeline the paper's methodology implies: its HMTT tracer captured\nreal machines; ours captures the simulated system, byte-compatible with\ncmd/tracegen output\n")
	return rep
}

// String renders the closed-loop report as text.
func (r *ClosedLoopResult) String() string { return r.Report().Text() }
