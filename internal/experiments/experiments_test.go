package experiments

import (
	"context"
	"strings"
	"testing"

	"memcon/internal/dram"
)

// testOpts keeps experiment runtime small for the unit-test suite.
func testOpts() Options {
	return Options{Scale: 0.04, Seed: 42, SimTimeNs: 200_000, Mixes: 3}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
		"fig11", "fig12", "fig14", "fig15", "table3", "fig16",
		"fig17", "fig18", "fig19", "minwi", "fleet-ce", "fleet-risk",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	for _, id := range ids {
		desc, err := Describe(id)
		if err != nil || desc == "" {
			t.Errorf("Describe(%q) = %q, %v", id, desc, err)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Error("unknown id described")
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown id ran")
	}
}

func TestOptionsNormalize(t *testing.T) {
	n := (Options{}).normalize()
	d := DefaultOptions()
	if n != d {
		t.Errorf("normalized zero options = %+v, want defaults %+v", n, d)
	}
	o := Options{Scale: 0.5, Seed: 7, SimTimeNs: 100, Mixes: 2, Fleet: 12, Workers: 3, Ctx: context.Background()}
	if got := o.normalize(); got != o {
		t.Errorf("valid options changed by normalize: %+v", got)
	}
	// Partially-set options keep what is set and fill the rest.
	p := (Options{Workers: 2}).normalize()
	if p.Workers != 2 {
		t.Errorf("normalize clobbered Workers: %d", p.Workers)
	}
	if p.Ctx == nil {
		t.Error("normalize left Ctx nil")
	}
}

// TestSeedZeroExplicit pins the SeedSet mechanism: a zero Seed is the
// default unless the caller marks it explicit, in which case it sticks.
func TestSeedZeroExplicit(t *testing.T) {
	if n := (Options{Seed: 0}).normalize(); n.Seed != DefaultOptions().Seed {
		t.Errorf("implicit zero seed = %d, want default %d", n.Seed, DefaultOptions().Seed)
	}
	if n := (Options{Seed: 0, SeedSet: true}).normalize(); n.Seed != 0 {
		t.Errorf("explicit zero seed replaced with %d", n.Seed)
	}
}

// TestRunStampsProvenance pins that the dispatcher records the
// normalized inputs (and only the inputs — Workers deliberately absent
// from the Provenance type) on every result's report.
func TestRunStampsProvenance(t *testing.T) {
	opts := testOpts()
	opts.Version = "test-build"
	out, err := Run("minwi", opts)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Report().Prov
	if p.Experiment != "minwi" || p.Seed != opts.Seed || p.Scale != opts.Scale ||
		p.SimTimeNs != opts.SimTimeNs || p.Mixes != opts.Mixes || p.Version != "test-build" {
		t.Errorf("provenance = %+v", p)
	}
	if p.Title == "" {
		t.Error("provenance missing the registry description")
	}
}

func TestRunFig6MatchesPaper(t *testing.T) {
	out, err := Run("fig6", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := out.(*Fig6Result)
	if !ok {
		t.Fatalf("wrong result type %T", out)
	}
	find := func(mode string, loMs dram.Nanoseconds) dram.Nanoseconds {
		for _, c := range r.Configs {
			if c.Mode.String() == mode && c.LoRef == loMs*dram.Millisecond {
				return c.MinWriteInterval / dram.Millisecond
			}
		}
		return -1
	}
	cases := []struct {
		mode string
		lo   dram.Nanoseconds
		want dram.Nanoseconds
	}{
		{"Read and Compare", 64, 560},
		{"Copy and Compare", 64, 864},
		{"Read and Compare", 128, 480},
		{"Read and Compare", 256, 448},
	}
	for _, c := range cases {
		if got := find(c.mode, c.lo); got != c.want {
			t.Errorf("%s @%dms: MWI = %d ms, want %d", c.mode, c.lo, got, c.want)
		}
	}
	if !strings.Contains(out.String(), "MinWriteInterval") {
		t.Error("report missing MinWriteInterval column")
	}
}

func TestRunAppendix(t *testing.T) {
	out, err := Run("minwi", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*AppendixResult)
	if r.Costs.ReadCompare != 1068 || r.Costs.CopyCompare != 1602 || r.Costs.RefreshCost != 39 {
		t.Errorf("appendix costs = %+v", r.Costs)
	}
	if !strings.Contains(out.String(), "1068") {
		t.Error("report missing cost values")
	}
}

func TestRunTable1(t *testing.T) {
	out, err := Run("table1", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Table1Result)
	if len(r.Apps) != 12 {
		t.Errorf("apps = %d, want 12", len(r.Apps))
	}
	if !strings.Contains(out.String(), "Netflix") {
		t.Error("report missing workloads")
	}
}

func TestRunFig3(t *testing.T) {
	out, err := Run("fig3", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig3Result)
	if r.Patterns != 100 {
		t.Errorf("patterns = %d, want 100", r.Patterns)
	}
	if r.UniqueCells == 0 {
		t.Fatal("no failing cells found across 100 patterns")
	}
	if r.ConditionalCells == 0 {
		t.Error("no conditionally failing cells; failures are not data-dependent")
	}
	// The defining observation: most failing cells are conditional.
	frac := float64(r.ConditionalCells) / float64(r.UniqueCells)
	if frac < 0.5 {
		t.Errorf("only %.0f%% of failing cells are data-dependent", 100*frac)
	}
	_ = out.String()
}

func TestRunFig4(t *testing.T) {
	opts := testOpts()
	opts.Scale = 0.1
	out, err := Run("fig4", opts)
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig4Result)
	if len(r.Rows) != 20 {
		t.Fatalf("benchmarks = %d, want 20", len(r.Rows))
	}
	if r.AllFail <= 0 {
		t.Fatal("ALL FAIL fraction is zero")
	}
	for _, row := range r.Rows {
		if row.Avg > r.AllFail {
			t.Errorf("%s: program content fails more rows (%v) than ALL FAIL (%v)", row.Benchmark, row.Avg, r.AllFail)
		}
		if row.Min > row.Avg || row.Avg > row.Max {
			t.Errorf("%s: min/avg/max ordering broken: %v/%v/%v", row.Benchmark, row.Min, row.Avg, row.Max)
		}
	}
	if r.RatioMin < 1 {
		t.Errorf("ratio min %v below 1; content should always fail less", r.RatioMin)
	}
	_ = out.String()
}

func TestRunFig7(t *testing.T) {
	out, err := Run("fig7", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig7Result)
	if len(r.Apps) != 3 {
		t.Fatalf("apps = %d, want 3", len(r.Apps))
	}
	for _, a := range r.Apps {
		if a.Under1ms < 0.9 {
			t.Errorf("%s: under-1ms fraction %v, want > 0.9", a.Name, a.Under1ms)
		}
		if a.Over1024ms > 0.02 {
			t.Errorf("%s: over-1024ms fraction %v, want < 2%%", a.Name, a.Over1024ms)
		}
	}
	_ = out.String()
}

func TestRunFig8(t *testing.T) {
	out, err := Run("fig8", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig8Result)
	for _, a := range r.Apps {
		if a.Fit.R2 < 0.8 {
			t.Errorf("%s: R2 = %v, want >= 0.8", a.Name, a.Fit.R2)
		}
		if a.Fit.Dist.Alpha <= 0 {
			t.Errorf("%s: non-positive alpha", a.Name)
		}
	}
	_ = out.String()
}

func TestRunFig9(t *testing.T) {
	out, err := Run("fig9", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig9Result)
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	if r.Average < 0.6 {
		t.Errorf("average long-interval share = %v, want > 0.6 (paper: 0.895)", r.Average)
	}
	_ = out.String()
}

func TestRunFig11(t *testing.T) {
	out, err := Run("fig11", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig11Result)
	if len(r.Apps) != 12 || len(r.P) != 12 {
		t.Fatalf("apps = %d, want 12", len(r.Apps))
	}
	// The DHR property: P at CIL=1024 must exceed P at CIL=1 for every
	// app, and approach 1 at very large CIL.
	idx := func(c float64) int {
		for i, v := range r.CILs {
			if v == c {
				return i
			}
		}
		return -1
	}
	i1, i1024, i32768 := idx(1), idx(1024), idx(32768)
	for a, name := range r.Apps {
		if r.P[a][i1024] < r.P[a][i1] {
			t.Errorf("%s: P decreased with CIL (%v at 1ms vs %v at 1024ms)", name, r.P[a][i1], r.P[a][i1024])
		}
		if r.P[a][i32768] < 0.5 {
			t.Errorf("%s: P at CIL 32768ms = %v, want approaching 1", name, r.P[a][i32768])
		}
	}
	_ = out.String()
}

func TestRunFig12(t *testing.T) {
	out, err := Run("fig12", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig12Result)
	// Coverage decreases with CIL for every app.
	for a, name := range r.Apps {
		for i := 1; i < len(r.CILs); i++ {
			if r.Coverage[a][i] > r.Coverage[a][i-1]+1e-9 {
				t.Errorf("%s: coverage increased from CIL %v to %v", name, r.CILs[i-1], r.CILs[i])
			}
		}
		// At 512-2048 ms coverage should remain substantial.
		var at1024 float64
		for i, c := range r.CILs {
			if c == 1024 {
				at1024 = r.Coverage[a][i]
			}
		}
		if at1024 < 0.5 {
			t.Errorf("%s: coverage at CIL 1024ms = %v, want > 0.5", name, at1024)
		}
	}
	_ = out.String()
}

func TestRunFig14(t *testing.T) {
	out, err := Run("fig14", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig14Result)
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	for _, row := range r.Rows {
		for i, red := range row.Reduction {
			if red <= 0 || red >= 0.75 {
				t.Errorf("%s CIL %d: reduction %v outside (0, 0.75)", row.Name, i, red)
			}
		}
	}
	if r.AvgAt1024 < 0.55 {
		t.Errorf("average reduction %v, want > 0.55 (paper: 64.7-74.5%%)", r.AvgAt1024)
	}
	_ = out.String()
}

func TestRunFig17(t *testing.T) {
	out, err := Run("fig17", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig17Result)
	if r.AvgAt1024 < 0.75 {
		t.Errorf("average LO-REF coverage %v, want > 0.75 (paper: ~95%%)", r.AvgAt1024)
	}
	_ = out.String()
}

func TestRunFig18(t *testing.T) {
	out, err := Run("fig18", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig18Result)
	if r.AvgTestingShare > 0.01 {
		t.Errorf("testing share %v of baseline refresh time, want << 1%% (paper: 0.01%%)", r.AvgTestingShare)
	}
	for _, row := range r.Rows {
		if row.RefreshShare < 0.2 || row.RefreshShare > 0.5 {
			t.Errorf("%s: refresh share %v, want in (0.2, 0.5) given 64.7-74.5%% reduction", row.Name, row.RefreshShare)
		}
	}
	_ = out.String()
}

func TestRunFig19(t *testing.T) {
	out, err := Run("fig19", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig19Result)
	for i := range r.CILs {
		diff := r.Full[i] - r.Half[i]
		if diff < -0.3 || diff > 0.3 {
			t.Errorf("CIL %v: halved intervals changed P by %v; paper reports little change", r.CILs[i], diff)
		}
	}
	_ = out.String()
}

func TestRunFig15(t *testing.T) {
	out, err := Run("fig15", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig15Result)
	if len(r.Cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(r.Cells))
	}
	for _, cores := range []int{1, 4} {
		// Speedup grows with density.
		s8 := r.Speedup(cores, dram.Density8Gb, 0.75)
		s32 := r.Speedup(cores, dram.Density32Gb, 0.75)
		if s8 <= 1.0 {
			t.Errorf("%d-core 8Gb speedup %v, want > 1", cores, s8)
		}
		if s32 <= s8 {
			t.Errorf("%d-core speedup not growing with density: %v vs %v", cores, s8, s32)
		}
		// 75% reduction beats 60%.
		if r.Speedup(cores, dram.Density32Gb, 0.75) < r.Speedup(cores, dram.Density32Gb, 0.60) {
			t.Errorf("%d-core: 75%% reduction slower than 60%%", cores)
		}
	}
	_ = out.String()
}

func TestRunTable3(t *testing.T) {
	out, err := Run("table3", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Table3Result)
	for _, cores := range []int{1, 4} {
		for _, tests := range []int{256, 512, 1024} {
			loss := r.Loss(cores, tests)
			if loss < -0.02 {
				t.Errorf("%d-core %d tests: negative loss %v", cores, tests, loss)
			}
			if loss > 0.08 {
				t.Errorf("%d-core %d tests: loss %v, want small (paper < 2%%)", cores, tests, loss)
			}
		}
	}
	_ = out.String()
}

func TestRunFig16(t *testing.T) {
	out, err := Run("fig16", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*Fig16Result)
	for _, cores := range []int{1, 4} {
		for _, d := range densities {
			s32ms := r.Speedup(cores, d, "32ms")
			raidr := r.Speedup(cores, d, "RAIDR")
			mc := r.Speedup(cores, d, "MEMCON")
			ideal := r.Speedup(cores, d, "64ms")
			if !(s32ms <= raidr+0.02 && raidr <= mc+0.02 && mc <= ideal+0.02) {
				t.Errorf("%d-core %s: ordering broken: 32ms %.3f, RAIDR %.3f, MEMCON %.3f, 64ms %.3f",
					cores, d, s32ms, raidr, mc, ideal)
			}
		}
	}
	_ = out.String()
}

func TestRunMotivation(t *testing.T) {
	out, err := Run("motiv", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.(*MotivationResult)
	if r.TrueWeakRows == 0 {
		t.Fatal("oracle found no weak rows; experiment vacuous")
	}
	// The paper's motivation: the naive test must miss a substantial
	// fraction of truly weak rows.
	if r.Missed == 0 {
		t.Error("naive neighbour test missed nothing; scrambling model ineffective")
	}
	if r.MissRate() < 0.2 {
		t.Errorf("miss rate = %v, expected substantial misses under scrambling", r.MissRate())
	}
	if !strings.Contains(out.String(), "MISSED") {
		t.Error("report missing the missed-rows row")
	}
}
