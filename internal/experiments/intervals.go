package experiments

import (
	"fmt"
	"strings"

	"memcon/internal/pareto"
	"memcon/internal/stats"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

// representativeApps are the three workloads Figs. 7 and 8 plot.
var representativeApps = []string{"ACBrotherHood", "Netflix", "SystemMgt"}

// cilGrid is the current-interval-length axis of Figs. 11 and 12 (ms).
var cilGrid = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// genTrace generates one application's trace under the options.
func genTrace(name string, opts Options) (*trace.Trace, error) {
	app, err := workload.AppByName(name)
	if err != nil {
		return nil, err
	}
	return app.Generate(opts.Seed, opts.Scale), nil
}

// Fig7App is one application's interval distribution.
type Fig7App struct {
	Name string
	Hist *stats.LogHistogram
	// Under1ms is the fraction of writes with interval below 1 ms.
	Under1ms float64
	// Over1024ms is the fraction of writes with interval above 1024 ms.
	Over1024ms float64
}

// Fig7Result reproduces Fig. 7.
type Fig7Result struct{ Apps []Fig7App }

// RunFig7 computes write-interval distributions for the representative
// workloads, one independent work unit per workload.
func RunFig7(opts Options) (fmt.Stringer, error) {
	apps, err := forUnits(opts, len(representativeApps), func(i int) (Fig7App, error) {
		name := representativeApps[i]
		tr, err := genTrace(name, opts)
		if err != nil {
			return Fig7App{}, err
		}
		h := stats.NewLogHistogram(1, 16) // 1 ms .. 32768 ms
		var under, over, n float64
		for _, iv := range tr.Intervals(true) {
			h.Add(iv)
			n++
			if iv < 1 {
				under++
			}
			if iv > 1024 {
				over++
			}
		}
		return Fig7App{
			Name: name, Hist: h,
			Under1ms:   under / n,
			Over1024ms: over / n,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Apps: apps}, nil
}

// String renders the Fig. 7 report.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — distribution of write intervals\n")
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "\n%s  (<1ms: %s, >1024ms: %s of writes)\n",
			a.Name, pct2(a.Under1ms), pct2(a.Over1024ms))
		b.WriteString(a.Hist.String())
	}
	return b.String()
}

// Fig8App is one application's Pareto fit.
type Fig8App struct {
	Name string
	Fit  pareto.Fit
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct{ Apps []Fig8App }

// RunFig8 fits Pareto distributions to the interval tails (>= 1 ms, the
// plotted range) of the representative workloads.
func RunFig8(opts Options) (fmt.Stringer, error) {
	apps, err := forUnits(opts, len(representativeApps), func(i int) (Fig8App, error) {
		name := representativeApps[i]
		tr, err := genTrace(name, opts)
		if err != nil {
			return Fig8App{}, err
		}
		// Fit the heavy tail with automatic threshold selection: the
		// interval body mixes in light-tailed hot-page pauses, exactly
		// like real bus traces mix cache-eviction churn with idle tails.
		fit, err := pareto.FitCCDFTail(tr.Intervals(false), nil, 64)
		if err != nil {
			return Fig8App{}, fmt.Errorf("experiments: fitting %s: %w", name, err)
		}
		return Fig8App{Name: name, Fit: fit}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Apps: apps}, nil
}

// String renders the Fig. 8 report.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — Pareto distribution of write intervals (P(X>x) = k*x^-alpha)\n\n")
	t := &table{header: []string{"application", "alpha", "xm (ms)", "R^2"}}
	for _, a := range r.Apps {
		t.addRow(a.Name,
			fmt.Sprintf("%.3f", a.Fit.Dist.Alpha),
			fmt.Sprintf("%.2f", a.Fit.Dist.Xm),
			fmt.Sprintf("%.4f", a.Fit.R2))
	}
	b.WriteString(t.String())
	b.WriteString("\npaper reports R^2 of 0.94/0.94/0.99 for its three workloads\n")
	return b.String()
}

// Fig9Row is one application's long-interval time share.
type Fig9Row struct {
	Name string
	// LongShare is the fraction of total write-interval time spent in
	// intervals >= 1024 ms.
	LongShare float64
}

// Fig9Result reproduces Fig. 9.
type Fig9Result struct {
	Rows    []Fig9Row
	Average float64
}

// RunFig9 computes the execution-time share of long write intervals for
// all twelve workloads.
func RunFig9(opts Options) (fmt.Stringer, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) (Fig9Row, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		var total, long float64
		for _, iv := range tr.Intervals(true) {
			total += iv
			if iv >= 1024 {
				long += iv
			}
		}
		share := 0.0
		if total > 0 {
			share = long / total
		}
		return Fig9Row{Name: apps[i].Name, LongShare: share}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Rows: rows}
	var sum float64
	for _, row := range rows {
		sum += row.LongShare
	}
	res.Average = sum / float64(len(res.Rows))
	return res, nil
}

// String renders the Fig. 9 report.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — execution time dominated by long write intervals (>= 1024 ms)\n\n")
	t := &table{header: []string{"application", ">=1024ms share", "<1024ms share"}}
	for _, row := range r.Rows {
		t.addRow(row.Name, pct(row.LongShare), pct(1-row.LongShare))
	}
	t.addRow("AVERAGE", pct(r.Average), pct(1-r.Average))
	b.WriteString(t.String())
	b.WriteString("\npaper: write intervals >= 1024 ms constitute 89.5% of total write-interval time on average\n")
	return b.String()
}

// Fig11Result reproduces Fig. 11: P(remaining interval > 1024 ms) as a
// function of the elapsed (current) interval length.
type Fig11Result struct {
	CILs []float64
	// P[app][i] is the conditional probability at CILs[i].
	Apps []string
	P    [][]float64
}

// RunFig11 computes the decreasing-hazard-rate conditionals for all
// workloads.
func RunFig11(opts Options) (fmt.Stringer, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) ([]float64, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		ivs := tr.Intervals(true)
		row := make([]float64, len(cilGrid))
		for j, c := range cilGrid {
			row[j] = pareto.ConditionalExceedEmpirical(ivs, c, 1024)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{CILs: cilGrid, P: rows}
	for _, app := range apps {
		res.Apps = append(res.Apps, app.Name)
	}
	return res, nil
}

// String renders the Fig. 11 report.
func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — P(RIL > 1024 ms) as a function of CIL\n\n")
	header := []string{"CIL (ms)"}
	header = append(header, r.Apps...)
	t := &table{header: header}
	for i, c := range r.CILs {
		row := []string{fmt.Sprintf("%.0f", c)}
		for a := range r.Apps {
			row = append(row, fmt.Sprintf("%.2f", r.P[a][i]))
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig12Result reproduces Fig. 12: coverage of write-interval time as a
// function of CIL.
type Fig12Result struct {
	CILs     []float64
	Apps     []string
	Coverage [][]float64
}

// RunFig12 computes prediction coverage for all workloads.
func RunFig12(opts Options) (fmt.Stringer, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) ([]float64, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		ivs := tr.Intervals(true)
		row := make([]float64, len(cilGrid))
		for j, c := range cilGrid {
			row[j] = pareto.CoverageAtCIL(ivs, c)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{CILs: cilGrid, Coverage: rows}
	for _, app := range apps {
		res.Apps = append(res.Apps, app.Name)
	}
	return res, nil
}

// String renders the Fig. 12 report.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — coverage of write-interval time vs CIL\n\n")
	header := []string{"CIL (ms)"}
	header = append(header, r.Apps...)
	t := &table{header: header}
	for i, c := range r.CILs {
		row := []string{fmt.Sprintf("%.0f", c)}
		for a := range r.Apps {
			row = append(row, pct(r.Coverage[a][i]))
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig19Result reproduces Fig. 19: the same interval statistics with all
// write intervals halved (emulating higher cache pressure).
type Fig19Result struct {
	App string
	// Full/Half give P(RIL > 1024 ms) at CIL in {512, 1024, 2048} ms.
	CILs []float64
	Full []float64
	Half []float64
	// FullShare/HalfShare are the >=1024 ms count fractions.
	FullShare, HalfShare float64
}

// RunFig19 halves the ACBrotherhood intervals and compares.
func RunFig19(opts Options) (fmt.Stringer, error) {
	tr, err := genTrace("ACBrotherHood", opts)
	if err != nil {
		return nil, err
	}
	half := tr.HalveIntervals()
	res := &Fig19Result{App: tr.Name, CILs: []float64{512, 1024, 2048}}
	fullIvs := tr.Intervals(true)
	halfIvs := half.Intervals(true)
	for _, c := range res.CILs {
		res.Full = append(res.Full, pareto.ConditionalExceedEmpirical(fullIvs, c, 1024))
		res.Half = append(res.Half, pareto.ConditionalExceedEmpirical(halfIvs, c, 1024))
	}
	count := func(ivs []float64) float64 {
		var over, n float64
		for _, iv := range ivs {
			n++
			if iv >= 1024 {
				over++
			}
		}
		if n == 0 {
			return 0
		}
		return over / n
	}
	res.FullShare = count(fullIvs)
	res.HalfShare = count(halfIvs)
	return res, nil
}

// String renders the Fig. 19 report.
func (r *Fig19Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 19 — sensitivity to halved write intervals (%s)\n\n", r.App)
	t := &table{header: []string{"CIL (ms)", "P(RIL>1024) full", "P(RIL>1024) halved"}}
	for i, c := range r.CILs {
		t.addRow(fmt.Sprintf("%.0f", c),
			fmt.Sprintf("%.2f", r.Full[i]),
			fmt.Sprintf("%.2f", r.Half[i]))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nintervals >= 1024 ms by count: full %s, halved %s\n",
		pct2(r.FullShare), pct2(r.HalfShare))
	b.WriteString("paper: halving the intervals does not significantly change P(RIL > 1024 ms)\n")
	return b.String()
}
