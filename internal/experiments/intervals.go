package experiments

import (
	"fmt"

	"memcon/internal/pareto"
	"memcon/internal/report"
	"memcon/internal/stats"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

// representativeApps are the three workloads Figs. 7 and 8 plot.
var representativeApps = []string{"ACBrotherHood", "Netflix", "SystemMgt"}

// cilGrid is the current-interval-length axis of Figs. 11 and 12 (ms).
var cilGrid = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// genTrace generates one application's trace under the options.
func genTrace(name string, opts Options) (*trace.Trace, error) {
	app, err := workload.AppByName(name)
	if err != nil {
		return nil, err
	}
	return app.Generate(opts.Seed, opts.Scale), nil
}

// Fig7App is one application's interval distribution.
type Fig7App struct {
	Name string
	Hist *stats.LogHistogram
	// Under1ms is the fraction of writes with interval below 1 ms.
	Under1ms float64
	// Over1024ms is the fraction of writes with interval above 1024 ms.
	Over1024ms float64
}

// Fig7Result reproduces Fig. 7.
type Fig7Result struct {
	resultMeta
	Apps []Fig7App
}

// RunFig7 computes write-interval distributions for the representative
// workloads, one independent work unit per workload.
func RunFig7(opts Options) (Result, error) {
	apps, err := forUnits(opts, len(representativeApps), func(i int) (Fig7App, error) {
		name := representativeApps[i]
		tr, err := genTrace(name, opts)
		if err != nil {
			return Fig7App{}, err
		}
		h := stats.NewLogHistogram(1, 16) // 1 ms .. 32768 ms
		var under, over, n float64
		for _, iv := range tr.Intervals(true) {
			h.Add(iv)
			n++
			if iv < 1 {
				under++
			}
			if iv > 1024 {
				over++
			}
		}
		return Fig7App{
			Name: name, Hist: h,
			Under1ms:   under / n,
			Over1024ms: over / n,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Apps: apps}, nil
}

// Report builds the Fig. 7 document. The histograms render as prose
// (byte-identical to the pre-typed output); the bucket counts also
// appear in machine shape as data-only tables.
func (r *Fig7Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 7 — distribution of write intervals\n")
	for _, a := range r.Apps {
		rep.Textf("\n%s  (<1ms: %s, >1024ms: %s of writes)\n",
			a.Name, pct2(a.Under1ms), pct2(a.Over1024ms))
		rep.Textf("%s", a.Hist.String())
	}
	at := report.NewTable("apps",
		report.CStr("application", ""),
		report.CFloat("under_1ms", "", "fraction"),
		report.CFloat("over_1024ms", "", "fraction"))
	bt := report.NewTable("buckets",
		report.CStr("application", ""),
		report.CFloat("bucket_low_ms", "", "ms"),
		report.CInt("count", "", "writes"))
	for _, a := range r.Apps {
		at.Add(report.S(a.Name), report.Fv(a.Under1ms), report.Fv(a.Over1024ms))
		h := a.Hist
		bt.Add(report.S(a.Name), report.Fv(0), report.I(h.Underflow()))
		for i := 0; i < h.Buckets; i++ {
			bt.Add(report.S(a.Name), report.Fv(h.BucketLow(i)), report.I(h.Count(i)))
		}
		bt.Add(report.S(a.Name), report.Fv(h.BucketLow(h.Buckets)), report.I(h.Overflow()))
	}
	rep.AddDataTable(at)
	rep.AddDataTable(bt)
	return rep
}

// String renders the Fig. 7 report as text.
func (r *Fig7Result) String() string { return r.Report().Text() }

// Fig8App is one application's Pareto fit.
type Fig8App struct {
	Name string
	Fit  pareto.Fit
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct {
	resultMeta
	Apps []Fig8App
}

// RunFig8 fits Pareto distributions to the interval tails (>= 1 ms, the
// plotted range) of the representative workloads.
func RunFig8(opts Options) (Result, error) {
	apps, err := forUnits(opts, len(representativeApps), func(i int) (Fig8App, error) {
		name := representativeApps[i]
		tr, err := genTrace(name, opts)
		if err != nil {
			return Fig8App{}, err
		}
		// Fit the heavy tail with automatic threshold selection: the
		// interval body mixes in light-tailed hot-page pauses, exactly
		// like real bus traces mix cache-eviction churn with idle tails.
		fit, err := pareto.FitCCDFTail(tr.Intervals(false), nil, 64)
		if err != nil {
			return Fig8App{}, fmt.Errorf("experiments: fitting %s: %w", name, err)
		}
		return Fig8App{Name: name, Fit: fit}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Apps: apps}, nil
}

// Report builds the Fig. 8 document.
func (r *Fig8Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 8 — Pareto distribution of write intervals (P(X>x) = k*x^-alpha)\n\n")
	t := report.NewTable("fits",
		report.CStr("application", ""),
		report.CFloat("alpha", "", ""),
		report.CFloat("xm_ms", "xm (ms)", "ms"),
		report.CFloat("r2", "R^2", ""))
	for _, a := range r.Apps {
		t.Add(report.S(a.Name),
			report.F(a.Fit.Dist.Alpha, fmt.Sprintf("%.3f", a.Fit.Dist.Alpha)),
			report.F(a.Fit.Dist.Xm, fmt.Sprintf("%.2f", a.Fit.Dist.Xm)),
			report.F(a.Fit.R2, fmt.Sprintf("%.4f", a.Fit.R2)))
	}
	rep.AddTable(t)
	rep.Textf("\npaper reports R^2 of 0.94/0.94/0.99 for its three workloads\n")
	return rep
}

// String renders the Fig. 8 report as text.
func (r *Fig8Result) String() string { return r.Report().Text() }

// Fig9Row is one application's long-interval time share.
type Fig9Row struct {
	Name string
	// LongShare is the fraction of total write-interval time spent in
	// intervals >= 1024 ms.
	LongShare float64
}

// Fig9Result reproduces Fig. 9.
type Fig9Result struct {
	resultMeta
	Rows    []Fig9Row
	Average float64
}

// RunFig9 computes the execution-time share of long write intervals for
// all twelve workloads.
func RunFig9(opts Options) (Result, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) (Fig9Row, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		var total, long float64
		for _, iv := range tr.Intervals(true) {
			total += iv
			if iv >= 1024 {
				long += iv
			}
		}
		share := 0.0
		if total > 0 {
			share = long / total
		}
		return Fig9Row{Name: apps[i].Name, LongShare: share}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Rows: rows}
	var sum float64
	for _, row := range rows {
		sum += row.LongShare
	}
	res.Average = sum / float64(len(res.Rows))
	return res, nil
}

// Report builds the Fig. 9 document.
func (r *Fig9Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 9 — execution time dominated by long write intervals (>= 1024 ms)\n\n")
	t := report.NewTable("rows",
		report.CStr("application", ""),
		report.CFloat("long_share", ">=1024ms share", "fraction"),
		report.CFloat("short_share", "<1024ms share", "fraction"))
	add := func(name string, share float64) {
		t.Add(report.S(name), report.F(share, pct(share)), report.F(1-share, pct(1-share)))
	}
	for _, row := range r.Rows {
		add(row.Name, row.LongShare)
	}
	add("AVERAGE", r.Average)
	rep.AddTable(t)
	rep.Textf("\npaper: write intervals >= 1024 ms constitute 89.5%% of total write-interval time on average\n")
	return rep
}

// String renders the Fig. 9 report as text.
func (r *Fig9Result) String() string { return r.Report().Text() }

// Fig11Result reproduces Fig. 11: P(remaining interval > 1024 ms) as a
// function of the elapsed (current) interval length.
type Fig11Result struct {
	resultMeta
	CILs []float64
	// P[app][i] is the conditional probability at CILs[i].
	Apps []string
	P    [][]float64
}

// RunFig11 computes the decreasing-hazard-rate conditionals for all
// workloads.
func RunFig11(opts Options) (Result, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) ([]float64, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		ivs := tr.Intervals(true)
		row := make([]float64, len(cilGrid))
		for j, c := range cilGrid {
			row[j] = pareto.ConditionalExceedEmpirical(ivs, c, 1024)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{CILs: cilGrid, P: rows}
	for _, app := range apps {
		res.Apps = append(res.Apps, app.Name)
	}
	return res, nil
}

// Report builds the Fig. 11 document: one column per application, as
// the pre-typed CSV export laid the series out.
func (r *Fig11Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 11 — P(RIL > 1024 ms) as a function of CIL\n\n")
	cols := []report.Column{report.CFloat("cil_ms", "CIL (ms)", "ms")}
	for _, app := range r.Apps {
		cols = append(cols, report.CFloat(app, app, "probability"))
	}
	t := report.NewTable("series", cols...)
	for i, c := range r.CILs {
		row := []report.Cell{report.F(c, fmt.Sprintf("%.0f", c))}
		for a := range r.Apps {
			row = append(row, report.F(r.P[a][i], fmt.Sprintf("%.2f", r.P[a][i])))
		}
		t.Add(row...)
	}
	rep.AddTable(t)
	return rep
}

// String renders the Fig. 11 report as text.
func (r *Fig11Result) String() string { return r.Report().Text() }

// Fig12Result reproduces Fig. 12: coverage of write-interval time as a
// function of CIL.
type Fig12Result struct {
	resultMeta
	CILs     []float64
	Apps     []string
	Coverage [][]float64
}

// RunFig12 computes prediction coverage for all workloads.
func RunFig12(opts Options) (Result, error) {
	apps := workload.Apps()
	rows, err := forUnits(opts, len(apps), func(i int) ([]float64, error) {
		tr := apps[i].Generate(opts.Seed, opts.Scale)
		ivs := tr.Intervals(true)
		row := make([]float64, len(cilGrid))
		for j, c := range cilGrid {
			row[j] = pareto.CoverageAtCIL(ivs, c)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{CILs: cilGrid, Coverage: rows}
	for _, app := range apps {
		res.Apps = append(res.Apps, app.Name)
	}
	return res, nil
}

// Report builds the Fig. 12 document.
func (r *Fig12Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 12 — coverage of write-interval time vs CIL\n\n")
	cols := []report.Column{report.CFloat("cil_ms", "CIL (ms)", "ms")}
	for _, app := range r.Apps {
		cols = append(cols, report.CFloat(app, app, "fraction"))
	}
	t := report.NewTable("series", cols...)
	for i, c := range r.CILs {
		row := []report.Cell{report.F(c, fmt.Sprintf("%.0f", c))}
		for a := range r.Apps {
			row = append(row, report.F(r.Coverage[a][i], pct(r.Coverage[a][i])))
		}
		t.Add(row...)
	}
	rep.AddTable(t)
	return rep
}

// String renders the Fig. 12 report as text.
func (r *Fig12Result) String() string { return r.Report().Text() }

// Fig19Result reproduces Fig. 19: the same interval statistics with all
// write intervals halved (emulating higher cache pressure).
type Fig19Result struct {
	resultMeta
	App string
	// Full/Half give P(RIL > 1024 ms) at CIL in {512, 1024, 2048} ms.
	CILs []float64
	Full []float64
	Half []float64
	// FullShare/HalfShare are the >=1024 ms count fractions.
	FullShare, HalfShare float64
}

// RunFig19 halves the ACBrotherhood intervals and compares.
func RunFig19(opts Options) (Result, error) {
	tr, err := genTrace("ACBrotherHood", opts)
	if err != nil {
		return nil, err
	}
	half := tr.HalveIntervals()
	res := &Fig19Result{App: tr.Name, CILs: []float64{512, 1024, 2048}}
	fullIvs := tr.Intervals(true)
	halfIvs := half.Intervals(true)
	for _, c := range res.CILs {
		res.Full = append(res.Full, pareto.ConditionalExceedEmpirical(fullIvs, c, 1024))
		res.Half = append(res.Half, pareto.ConditionalExceedEmpirical(halfIvs, c, 1024))
	}
	count := func(ivs []float64) float64 {
		var over, n float64
		for _, iv := range ivs {
			n++
			if iv >= 1024 {
				over++
			}
		}
		if n == 0 {
			return 0
		}
		return over / n
	}
	res.FullShare = count(fullIvs)
	res.HalfShare = count(halfIvs)
	return res, nil
}

// Report builds the Fig. 19 document.
func (r *Fig19Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 19 — sensitivity to halved write intervals (%s)\n\n", r.App)
	t := report.NewTable("series",
		report.CFloat("cil_ms", "CIL (ms)", "ms"),
		report.CFloat("full", "P(RIL>1024) full", "probability"),
		report.CFloat("halved", "P(RIL>1024) halved", "probability"))
	for i, c := range r.CILs {
		t.Add(report.F(c, fmt.Sprintf("%.0f", c)),
			report.F(r.Full[i], fmt.Sprintf("%.2f", r.Full[i])),
			report.F(r.Half[i], fmt.Sprintf("%.2f", r.Half[i])))
	}
	rep.AddTable(t)
	rep.Textf("\nintervals >= 1024 ms by count: full %s, halved %s\n",
		pct2(r.FullShare), pct2(r.HalfShare))
	rep.Textf("paper: halving the intervals does not significantly change P(RIL > 1024 ms)\n")
	st := report.NewTable("summary",
		report.CFloat("full_share", "", "fraction"),
		report.CFloat("half_share", "", "fraction"))
	st.Add(report.Fv(r.FullShare), report.Fv(r.HalfShare))
	rep.AddDataTable(st)
	return rep
}

// String renders the Fig. 19 report as text.
func (r *Fig19Result) String() string { return r.Report().Text() }
