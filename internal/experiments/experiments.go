// Package experiments regenerates every table and figure of the MEMCON
// paper's evaluation. Each experiment is a typed runner producing both
// structured results and a rendered text table with the same rows/series
// the paper reports. The DESIGN.md per-experiment index maps experiment
// ids to paper artifacts; cmd/memconsim dispatches on the same ids.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"memcon/internal/obs"
	"memcon/internal/parallel"
)

// Options tune experiment cost. The defaults reproduce the paper-scale
// runs; tests use smaller scales.
type Options struct {
	// Scale in (0,1] shrinks workload sizes (trace pages, module rows).
	Scale float64
	// Seed drives all randomness, making every experiment reproducible.
	Seed int64
	// SimTimeNs bounds performance-simulation runs (per configuration).
	SimTimeNs int64
	// Mixes is the number of multiprogrammed mixes for performance runs.
	Mixes int
	// Workers bounds the fan-out of the parallel sweep loops; values
	// below 1 select runtime.GOMAXPROCS(0). Every experiment produces
	// byte-identical output for any worker count (per-unit seeds are
	// derived with parallel.Seed, fan-in is ordered).
	Workers int
	// Ctx cancels in-flight sweeps between work units; nil means
	// context.Background().
	Ctx context.Context
	// Observer, when set, receives the structured lifecycle events of
	// every engine an experiment runs. Sweeps may invoke it from
	// multiple goroutines, so install only observers safe for
	// concurrent use (obs.Metrics aggregates commutatively and keeps
	// sink output deterministic for any worker count).
	Observer obs.Observer
	// Phases, when set, records per-experiment wall time: the
	// dispatcher wraps each run in Phases.Start(id).
	Phases *obs.PhaseTimer
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options {
	return Options{
		Scale:     1.0,
		Seed:      42,
		SimTimeNs: 500_000,
		Mixes:     30,
		Workers:   runtime.GOMAXPROCS(0),
		Ctx:       context.Background(),
	}
}

// normalize fills zero fields with defaults.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = d.Scale
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.SimTimeNs <= 0 {
		o.SimTimeNs = d.SimTimeNs
	}
	if o.Mixes <= 0 {
		o.Mixes = d.Mixes
	}
	if o.Workers < 1 {
		o.Workers = d.Workers
	}
	if o.Ctx == nil {
		o.Ctx = d.Ctx
	}
	return o
}

// forUnits fans an experiment's independent work units out over the
// options' worker budget and returns the per-unit results in unit
// order. Units must not share mutable state; anything they need beyond
// their index has to be built inside fn or be read-only.
func forUnits[T any](opts Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(opts.Ctx, n, opts.Workers, fn)
}

// Runner executes one experiment and renders its report.
type Runner func(Options) (fmt.Stringer, error)

// registry maps experiment ids to runners. Ids follow the paper's
// figure/table numbering.
var registry = map[string]struct {
	runner Runner
	desc   string
}{
	"table1": {RunTable1, "Table 1: evaluated long-running workloads"},
	"fig3":   {RunFig3, "Fig. 3: cells failing conditionally on data pattern"},
	"fig4":   {RunFig4, "Fig. 4: failing rows, program content vs all-pattern"},
	"fig6":   {RunFig6, "Fig. 6: accumulated cost and MinWriteInterval"},
	"fig7":   {RunFig7, "Fig. 7: write-interval distributions"},
	"fig8":   {RunFig8, "Fig. 8: Pareto fit of write intervals"},
	"fig9":   {RunFig9, "Fig. 9: execution time in long write intervals"},
	"fig11":  {RunFig11, "Fig. 11: P(RIL>1024ms) vs current interval length"},
	"fig12":  {RunFig12, "Fig. 12: prediction coverage vs current interval length"},
	"fig14":  {RunFig14, "Fig. 14: refresh reduction with MEMCON"},
	"fig15":  {RunFig15, "Fig. 15: speedup over 16 ms baseline"},
	"table3": {RunTable3, "Table 3: performance loss from concurrent testing"},
	"fig16":  {RunFig16, "Fig. 16: comparison with other refresh mechanisms"},
	"fig17":  {RunFig17, "Fig. 17: execution-time coverage of PRIL (LO-REF)"},
	"fig18":  {RunFig18, "Fig. 18: time on refresh and testing vs baseline"},
	"fig19":  {RunFig19, "Fig. 19: sensitivity to halved write intervals"},
	"minwi":  {RunAppendix, "Appendix: DDR3-1600 latency building blocks"},
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e.desc, nil
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) (fmt.Stringer, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	opts = opts.normalize()
	if opts.Phases != nil {
		defer opts.Phases.Start(id)()
	}
	return e.runner(opts)
}

// table is a tiny fixed-width text table builder shared by the reports.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func pct(x float64) string  { return fmt.Sprintf("%.1f%%", 100*x) }
func pct2(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
