// Package experiments regenerates every table and figure of the MEMCON
// paper's evaluation. Each experiment is a typed runner producing a
// structured report.Report — provenance header plus typed tables — from
// which the text, CSV, and JSON renderings all derive. The DESIGN.md
// per-experiment index maps experiment ids to paper artifacts;
// cmd/memconsim dispatches on the same ids.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"memcon/internal/obs"
	"memcon/internal/parallel"
	"memcon/internal/report"
)

// Options tune experiment cost. The defaults reproduce the paper-scale
// runs; tests use smaller scales.
type Options struct {
	// Scale in (0,1] shrinks workload sizes (trace pages, module rows).
	Scale float64
	// Seed drives all randomness, making every experiment reproducible.
	// A zero Seed selects the default unless SeedSet is true.
	Seed int64
	// SeedSet marks Seed as explicitly chosen, making seed 0 usable:
	// without it a zero value is indistinguishable from "unset" and
	// normalize would silently substitute the default.
	SeedSet bool
	// SimTimeNs bounds performance-simulation runs (per configuration).
	SimTimeNs int64
	// Mixes is the number of multiprogrammed mixes for performance runs.
	Mixes int
	// Fleet is the module count for fleet-scale experiments; values
	// below 1 derive a scale-proportional default (160 at full scale,
	// floor 4). Single-module experiments ignore it.
	Fleet int
	// Mapping names the vendor address-mapping scheme chip-level
	// experiments build their scramblers with (dram.MappingNames lists
	// the registry; "" and "default" both select the original
	// Feistel-style scrambler). Experiments that build no chips ignore
	// it — see mappedExperiments.
	Mapping string
	// Disturb is the RowHammer mitigation spec for read-disturb
	// experiments ("", "none", "para:<p>", "prac:<n>" — see
	// refresh.ParseMitigation). Experiments that simulate no disturbance
	// ignore it — see disturbExperiments.
	Disturb string
	// Workers bounds the fan-out of the parallel sweep loops; values
	// below 1 select runtime.GOMAXPROCS(0). Every experiment produces
	// byte-identical output for any worker count (per-unit seeds are
	// derived with parallel.Seed, fan-in is ordered).
	Workers int
	// Version is an opaque build identifier recorded in report
	// provenance (for example a git-describe string). It never
	// influences the numbers; report.Diff treats mismatches as notes.
	Version string
	// Ctx cancels in-flight sweeps between work units; nil means
	// context.Background().
	Ctx context.Context
	// Observer, when set, receives the structured lifecycle events of
	// every engine an experiment runs. Sweeps may invoke it from
	// multiple goroutines, so install only observers safe for
	// concurrent use (obs.Metrics aggregates commutatively and keeps
	// sink output deterministic for any worker count).
	Observer obs.Observer
	// Phases, when set, records per-experiment wall time: the
	// dispatcher wraps each run in Phases.Start(id).
	Phases *obs.PhaseTimer
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options {
	return Options{
		Scale:     1.0,
		Seed:      42,
		SimTimeNs: 500_000,
		Mixes:     30,
		Fleet:     160,
		Workers:   runtime.GOMAXPROCS(0),
		Ctx:       context.Background(),
	}
}

// normalize fills zero fields with defaults.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = d.Scale
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = d.Seed
	}
	if o.SimTimeNs <= 0 {
		o.SimTimeNs = d.SimTimeNs
	}
	if o.Mixes <= 0 {
		o.Mixes = d.Mixes
	}
	if o.Fleet < 1 {
		o.Fleet = deriveFleet(o.Scale)
	}
	if o.Workers < 1 {
		o.Workers = d.Workers
	}
	if o.Ctx == nil {
		o.Ctx = d.Ctx
	}
	return o
}

// forUnits fans an experiment's independent work units out over the
// options' worker budget and returns the per-unit results in unit
// order. Units must not share mutable state; anything they need beyond
// their index has to be built inside fn or be read-only.
func forUnits[T any](opts Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(opts.Ctx, n, opts.Workers, fn)
}

// Result is the outcome of one experiment: a typed report plus the
// legacy text rendering (String delegates to the report's text form).
// The interface is sealed — result types live in this package and embed
// resultMeta, which lets the dispatcher stamp provenance after the run.
type Result interface {
	fmt.Stringer
	// Report builds the structured result document. The provenance
	// header is populated when the result came from Run; results built
	// by calling a runner directly carry empty provenance.
	Report() *report.Report
	setProvenance(report.Provenance)
}

// resultMeta carries the provenance the dispatcher stamps onto every
// result. Result types embed it (by value) to satisfy Result.
type resultMeta struct {
	prov report.Provenance
}

func (m *resultMeta) setProvenance(p report.Provenance) { m.prov = p }

// provenance returns the stamped provenance for Report builders.
func (m *resultMeta) provenance() report.Provenance { return m.prov }

// Runner executes one experiment and returns its typed result.
type Runner func(Options) (Result, error)

// entry pairs a runner with its registry description. fleet marks
// experiments whose numbers depend on Options.Fleet — only those stamp
// the fleet size into provenance, so single-module reports stay
// byte-identical to their pre-fleet form.
type entry struct {
	runner Runner
	desc   string
	fleet  bool
}

// registry maps experiment ids to runners. Ids follow the paper's
// figure/table numbering.
var registry = map[string]entry{
	"table1": {RunTable1, "Table 1: evaluated long-running workloads", false},
	"fig3":   {RunFig3, "Fig. 3: cells failing conditionally on data pattern", false},
	"fig4":   {RunFig4, "Fig. 4: failing rows, program content vs all-pattern", false},
	"fig6":   {RunFig6, "Fig. 6: accumulated cost and MinWriteInterval", false},
	"fig7":   {RunFig7, "Fig. 7: write-interval distributions", false},
	"fig8":   {RunFig8, "Fig. 8: Pareto fit of write intervals", false},
	"fig9":   {RunFig9, "Fig. 9: execution time in long write intervals", false},
	"fig11":  {RunFig11, "Fig. 11: P(RIL>1024ms) vs current interval length", false},
	"fig12":  {RunFig12, "Fig. 12: prediction coverage vs current interval length", false},
	"fig14":  {RunFig14, "Fig. 14: refresh reduction with MEMCON", false},
	"fig15":  {RunFig15, "Fig. 15: speedup over 16 ms baseline", false},
	"table3": {RunTable3, "Table 3: performance loss from concurrent testing", false},
	"fig16":  {RunFig16, "Fig. 16: comparison with other refresh mechanisms", false},
	"fig17":  {RunFig17, "Fig. 17: execution-time coverage of PRIL (LO-REF)", false},
	"fig18":  {RunFig18, "Fig. 18: time on refresh and testing vs baseline", false},
	"fig19":  {RunFig19, "Fig. 19: sensitivity to halved write intervals", false},
	"minwi":  {RunAppendix, "Appendix: DDR3-1600 latency building blocks", false},
	"fleet-ce": {RunFleetCE,
		"Fleet: correctable-error log and bank fault clustering", true},
	"fleet-risk": {RunFleetRisk,
		"Fleet: early-CE features and UE risk prediction", true},
}

// mappedExperiments marks the experiments whose numbers depend on the
// chip address mapping — the ones that build scramblers (directly or
// via newChip). Only these stamp Options.Mapping into provenance and
// cache keys; for every other id Normalize zeroes the field, so
// trace-driven and analytical reports stay byte-identical to their
// pre-mapping form no matter what -mapping the caller passed.
var mappedExperiments = map[string]bool{
	"fig3":      true,
	"fig4":      true,
	"vrt":       true,
	"profile":   true,
	"abl-remap": true,
	"motiv":     true,
}

// disturbExperiments marks the experiments whose numbers depend on the
// RowHammer mitigation spec — the read-disturb co-simulations registered
// in disturbexp.go. Only these stamp Options.Disturb into provenance and
// cache keys; for every other id Normalize zeroes the field, so all
// pre-disturb reports and cache keys stay byte-identical no matter what
// -disturb the caller passed.
var disturbExperiments = map[string]bool{
	"disturb-exposure":   true,
	"disturb-mitigation": true,
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e.desc, nil
}

// Run executes the experiment with the given id and stamps the result's
// report provenance with the normalized inputs. It is a thin
// compatibility wrapper: the Options are normalized (SeedSet
// disambiguation included) into a canonical Request and handed to
// RunRequest, the request-based entrypoint. The worker count is
// deliberately not recorded in provenance: reports are byte-identical
// for any -parallel value, and provenance only holds inputs that
// determine the numbers.
func Run(id string, opts Options) (Result, error) {
	opts = opts.normalize()
	req := Request{
		Experiment: id,
		Seed:       opts.Seed,
		Scale:      opts.Scale,
		SimTimeNs:  opts.SimTimeNs,
		Mixes:      opts.Mixes,
		Fleet:      opts.Fleet,
		Mapping:    opts.Mapping,
		Disturb:    opts.Disturb,
		Version:    opts.Version,
	}
	return RunRequest(opts.Ctx, req, Runtime{
		Workers:  opts.Workers,
		Observer: opts.Observer,
		Phases:   opts.Phases,
	})
}

func pct(x float64) string  { return fmt.Sprintf("%.1f%%", 100*x) }
func pct2(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
