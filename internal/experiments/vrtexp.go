package experiments

import (
	"fmt"
	"math/rand"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/report"
)

func init() {
	registry["vrt"] = entry{RunVRT, "Extension: variable retention time — online testing vs one-shot profiling", false}
}

// VRTCheckpoint is one mid-interval audit point.
type VRTCheckpoint struct {
	Hour float64
	// FailingRows is the number of rows failing at LO-REF under the
	// current content and current VRT state.
	FailingRows int
	// RAIDREscapes are failing rows missing from the one-shot profile.
	RAIDREscapes int
	// MemconEscapes are failing rows whose state changed since
	// MEMCON's last test of that content (the bounded exposure of
	// online testing).
	MemconEscapes int
}

// VRTResult compares mitigation coverage under VRT over simulated time.
type VRTResult struct {
	resultMeta
	Checkpoints []VRTCheckpoint
	// TotalRAIDR / TotalMemcon accumulate escapes over the run.
	TotalRAIDR  int
	TotalMemcon int
}

// RunVRT simulates 12 hours with a VRT-active weak-cell population.
// Every hour, all content is rewritten: MEMCON re-tests rows with the
// new content (its normal online behaviour), while the one-shot profile
// from hour 0 never updates. Halfway through every hour, the audit
// counts rows that currently fail at LO-REF and asks which mechanism
// knew about them.
func RunVRT(opts Options) (Result, error) {
	geom := charGeometry(opts.Scale * 0.5)
	geom.BanksPerChip = 1
	scr, err := dram.NewMappedScrambler(geom, uint64(opts.Seed), nil, opts.Mapping)
	if err != nil {
		return nil, err
	}
	params := faults.ParamsForRefresh(dram.RefreshWindowDefault)
	params.WeakCellFraction = 5e-3
	base, err := faults.NewModel(geom, scr, uint64(opts.Seed), params)
	if err != nil {
		return nil, err
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		return nil, err
	}
	vparams := faults.VRTParams{ToggleRate: 2, DegradeFactor: 0.3, AffectedFraction: 0.5}
	vrt := faults.NewVRTModel(base, vparams, opts.Seed)

	const hour = 3600 * dram.Second
	loRef := dram.RefreshWindowDefault
	rng := rand.New(rand.NewSource(opts.Seed))
	content := dram.NewRow(geom.ColsPerRow)

	writeAll := func(at dram.Nanoseconds) error {
		for r := 0; r < geom.RowsPerBank; r++ {
			content.Randomize(rng)
			if err := mod.WriteRow(dram.RowAddress{Bank: 0, Row: r}, content, at); err != nil {
				return err
			}
		}
		return nil
	}
	failingNow := func() map[int]bool {
		out := make(map[int]bool)
		for r := 0; r < geom.RowsPerBank; r++ {
			if len(vrt.FailingCellsVRT(mod, dram.RowAddress{Bank: 0, Row: r}, loRef)) > 0 {
				out[r] = true
			}
		}
		return out
	}

	// Hour 0: content written; the one-shot profile AND MEMCON's tests
	// both see the hour-0 state.
	if err := writeAll(0); err != nil {
		return nil, err
	}
	staticProfile := failingNow()
	memconKnown := failingNow()

	res := &VRTResult{}
	for h := 0; h < 12; h++ {
		// Mid-interval audit: VRT advances half an hour.
		vrt.Advance(dram.Nanoseconds(h)*hour + hour/2)
		failing := failingNow()
		cp := VRTCheckpoint{Hour: float64(h) + 0.5, FailingRows: len(failing)}
		for r := range failing {
			if !staticProfile[r] {
				cp.RAIDREscapes++
			}
			if !memconKnown[r] {
				cp.MemconEscapes++
			}
		}
		res.Checkpoints = append(res.Checkpoints, cp)
		res.TotalRAIDR += cp.RAIDREscapes
		res.TotalMemcon += cp.MemconEscapes

		// End of hour: content rewritten, MEMCON re-tests with the new
		// content and the CURRENT retention state.
		vrt.Advance(dram.Nanoseconds(h+1) * hour)
		if err := writeAll(dram.Nanoseconds(h+1) * hour); err != nil {
			return nil, err
		}
		memconKnown = failingNow()
	}
	return res, nil
}

// Report builds the VRT-comparison document.
func (r *VRTResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Extension — variable retention time: online testing vs one-shot profile\n\n")
	t := report.NewTable("checkpoints",
		report.CFloat("hour", "", "h"),
		report.CInt("failing_rows", "failing rows", "rows"),
		report.CInt("raidr_escapes", "one-shot profile escapes", "rows"),
		report.CInt("memcon_escapes", "MEMCON escapes", "rows"))
	for _, cp := range r.Checkpoints {
		t.Add(report.F(cp.Hour, fmt.Sprintf("%.1f", cp.Hour)),
			report.I(int64(cp.FailingRows)),
			report.I(int64(cp.RAIDREscapes)),
			report.I(int64(cp.MemconEscapes)))
	}
	rep.AddTable(t)
	rep.Textf("\ntotals over 12 h: one-shot %d escapes, MEMCON %d\n", r.TotalRAIDR, r.TotalMemcon)
	rep.Textf("cells toggle retention states over time (VRT); a boot-time profile decays\nwhile MEMCON's per-content-change testing bounds the exposure window —\nthe AVATAR observation, reproduced with content-based testing\n")
	st := report.NewTable("summary",
		report.CInt("total_raidr", "", "rows"),
		report.CInt("total_memcon", "", "rows"))
	st.Add(report.I(int64(r.TotalRAIDR)), report.I(int64(r.TotalMemcon)))
	rep.AddDataTable(st)
	return rep
}

// String renders the VRT comparison as text.
func (r *VRTResult) String() string { return r.Report().Text() }
