package experiments

import (
	"strings"
	"testing"

	"memcon/internal/report"
)

// TestEveryExperimentReports is the registry-wide property test for the
// typed report pipeline: every registered id must build a report that
// renders in all three formats, survives a JSON round trip unchanged,
// and is byte-identical for any worker count.
func TestEveryExperimentReports(t *testing.T) {
	opts := testOpts()
	opts.Scale = 0.02
	opts.Workers = 1
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			out, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep := out.Report()

			// Provenance is stamped with the normalized inputs. Only
			// fleet-scale experiments record the fleet size: a non-fleet
			// experiment stamping it would perturb its committed reports,
			// and a fleet experiment omitting it would let -diff compare
			// runs of different fleet sizes as if comparable.
			if rep.Prov.Experiment != id || rep.Prov.Seed != opts.Seed {
				t.Errorf("provenance = %+v", rep.Prov)
			}
			wantFleet := 0
			if registry[id].fleet {
				wantFleet = opts.normalize().Fleet
			}
			if rep.Prov.Fleet != wantFleet {
				t.Errorf("provenance.fleet = %d, want %d", rep.Prov.Fleet, wantFleet)
			}

			// Text renders, is non-empty, and matches String().
			text := rep.Text()
			if strings.TrimSpace(text) == "" {
				t.Error("empty text rendering")
			}
			if text != out.String() {
				t.Error("String() diverged from Report().Text()")
			}

			// CSV renders with a rectangular body.
			csv, err := rep.CSV()
			if err != nil {
				t.Fatalf("CSV: %v", err)
			}
			lines := strings.Split(strings.TrimSpace(csv), "\n")
			if len(lines) < 2 {
				t.Errorf("csv has only %d lines", len(lines))
			}

			// JSON round-trips exactly.
			doc, err := rep.MarshalCanonical()
			if err != nil {
				t.Fatalf("MarshalCanonical: %v", err)
			}
			back, err := report.DecodeBytes(doc)
			if err != nil {
				t.Fatalf("DecodeBytes: %v", err)
			}
			if !rep.Equal(back) {
				t.Error("JSON round trip changed the report")
			}

			// A fresh identical run diffs clean at zero tolerance, and the
			// canonical document is byte-identical for any worker count.
			for _, workers := range []int{4, 8} {
				wopts := opts
				wopts.Workers = workers
				out2, err := Run(id, wopts)
				if err != nil {
					t.Fatal(err)
				}
				rep2 := out2.Report()
				if d := report.Diff(rep, rep2, report.Tolerance{}); !d.Clean() {
					t.Errorf("workers=%d: re-run drifted:\n%s", workers, d)
				}
				doc2, err := rep2.MarshalCanonical()
				if err != nil {
					t.Fatal(err)
				}
				if string(doc) != string(doc2) {
					t.Errorf("workers=%d: canonical JSON not byte-identical", workers)
				}
			}
		})
	}
}
