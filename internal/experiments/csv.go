package experiments

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// CSVer is implemented by results whose series are useful to plot.
// Rows returns a header row followed by data rows.
type CSVer interface {
	CSVRows() [][]string
}

// CSV renders any CSVer to RFC-4180 text.
func CSV(r CSVer) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.WriteAll(r.CSVRows()); err != nil {
		return "", fmt.Errorf("experiments: encoding csv: %w", err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("experiments: flushing csv: %w", err)
	}
	return b.String(), nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSVRows renders Fig. 11's conditional-probability series.
func (r *Fig11Result) CSVRows() [][]string {
	header := append([]string{"cil_ms"}, r.Apps...)
	rows := [][]string{header}
	for i, c := range r.CILs {
		row := []string{f(c)}
		for a := range r.Apps {
			row = append(row, f(r.P[a][i]))
		}
		rows = append(rows, row)
	}
	return rows
}

// CSVRows renders Fig. 12's coverage series.
func (r *Fig12Result) CSVRows() [][]string {
	header := append([]string{"cil_ms"}, r.Apps...)
	rows := [][]string{header}
	for i, c := range r.CILs {
		row := []string{f(c)}
		for a := range r.Apps {
			row = append(row, f(r.Coverage[a][i]))
		}
		rows = append(rows, row)
	}
	return rows
}

// CSVRows renders Fig. 14's per-application reductions.
func (r *Fig14Result) CSVRows() [][]string {
	rows := [][]string{{"application", "cil_512ms", "cil_1024ms", "cil_2048ms"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, f(row.Reduction[0]), f(row.Reduction[1]), f(row.Reduction[2])})
	}
	return rows
}

// CSVRows renders Fig. 15's speedup grid.
func (r *Fig15Result) CSVRows() [][]string {
	rows := [][]string{{"cores", "density", "reduction", "speedup"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			strconv.Itoa(c.Cores), c.Density.String(), f(c.Reduction), f(c.Speedup),
		})
	}
	return rows
}

// CSVRows renders Fig. 16's policy grid.
func (r *Fig16Result) CSVRows() [][]string {
	rows := [][]string{{"cores", "density", "policy", "speedup"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			strconv.Itoa(c.Cores), c.Density.String(), c.Policy, f(c.Speedup),
		})
	}
	return rows
}

// CSVRows renders Fig. 4's per-benchmark failing-row fractions.
func (r *Fig4Result) CSVRows() [][]string {
	rows := [][]string{{"benchmark", "avg", "min", "max"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Benchmark, f(row.Avg), f(row.Min), f(row.Max)})
	}
	rows = append(rows, []string{"ALL_FAIL", f(r.AllFail), "", ""})
	return rows
}

// CSVRows renders Fig. 9's time shares.
func (r *Fig9Result) CSVRows() [][]string {
	rows := [][]string{{"application", "long_share"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, f(row.LongShare)})
	}
	return rows
}

// CSVRows renders the Fig. 6 accumulated-cost curve.
func (r *Fig6Result) CSVRows() [][]string {
	rows := [][]string{{"time_ms", "hiref_ns", "memcon_ns"}}
	for _, p := range r.Curve {
		rows = append(rows, []string{
			strconv.FormatInt(int64(p.Time)/1_000_000, 10),
			strconv.FormatInt(int64(p.HiRef), 10),
			strconv.FormatInt(int64(p.Memcon), 10),
		})
	}
	return rows
}
