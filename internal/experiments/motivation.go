package experiments

import (
	"memcon/internal/faults"
	"memcon/internal/report"
)

func init() {
	registry["motiv"] = entry{RunMotivation, "Motivation (paper sec. 2): naive system-level neighbour testing misses failures", false}
}

// MotivationResult quantifies why system-level pattern testing under a
// linear-mapping assumption cannot find every data-dependent failure:
// address scrambling and column remapping put physical neighbours at
// unrelated system addresses.
type MotivationResult struct {
	resultMeta
	// TrueWeakRows is the oracle count (rows that can fail with some
	// content at the test idle time).
	TrueWeakRows int
	// NaiveFlagged is what the linear-mapping neighbour test finds.
	NaiveFlagged int
	// Missed is the number of truly weak rows the naive test never
	// flags — the failures that would corrupt data in the field.
	Missed int
}

// MissRate returns the fraction of truly weak rows missed.
func (r *MotivationResult) MissRate() float64 {
	if r.TrueWeakRows == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.TrueWeakRows)
}

// RunMotivation runs the naive system-level neighbour test against the
// silicon ground truth.
func RunMotivation(opts Options) (Result, error) {
	geom := charGeometry(opts.Scale * 0.5)
	geom.BanksPerChip = 2
	params := faults.DefaultParams()
	params.WeakCellFraction = 2e-3 // denser population for stable statistics
	tester, err := newChip(geom, uint64(opts.Seed), params, opts.Mapping)
	if err != nil {
		return nil, err
	}
	idle := faults.CharacterizationIdle
	naive := tester.NaiveNeighborTest(idle)
	truth := tester.GroundTruthWeakRows(idle)

	res := &MotivationResult{TrueWeakRows: len(truth), NaiveFlagged: len(naive)}
	for row := range truth {
		if !naive[row] {
			res.Missed++
		}
	}
	return res, nil
}

// Report builds the motivation document.
func (r *MotivationResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Motivation — system-level neighbour testing vs silicon ground truth\n\n")
	t := report.NewTable("rows",
		report.CStr("quantity", ""),
		report.CInt("rows", "", "rows"))
	t.Add(report.S("truly weak (oracle, any content)"), report.I(int64(r.TrueWeakRows)))
	t.Add(report.S("flagged by linear-mapping neighbour test"), report.I(int64(r.NaiveFlagged)))
	t.Add(report.S("MISSED by the naive test"), report.I(int64(r.Missed)))
	rep.AddTable(t)
	rep.Textf("\nmiss rate: %s — address scrambling and column remapping put physical\n", pct(r.MissRate()))
	rep.Textf("neighbours at unrelated system addresses, so pattern tests exercise the\nwrong aggressors; this is why MEMCON tests the actual content instead\n")
	st := report.NewTable("summary", report.CFloat("miss_rate", "", "fraction"))
	st.Add(report.Fv(r.MissRate()))
	rep.AddDataTable(st)
	return rep
}

// String renders the motivation report as text.
func (r *MotivationResult) String() string { return r.Report().Text() }
