package experiments

import (
	"fmt"
	"strings"

	"memcon/internal/costmodel"
	"memcon/internal/dram"
)

// Fig6Config is one (test mode, LO-REF) combination of the Fig. 6 study.
type Fig6Config struct {
	Mode             costmodel.TestMode
	LoRef            dram.Nanoseconds
	TestCost         dram.Nanoseconds
	MinWriteInterval dram.Nanoseconds
}

// Fig6Result reproduces Fig. 6: accumulated-cost curves and the
// MinWriteInterval for each test mode / LO-REF interval.
type Fig6Result struct {
	Configs []Fig6Config
	// Curve samples the primary configuration (Read-and-Compare, 64 ms)
	// like the figure does.
	Curve []costmodel.CurvePoint
}

// RunFig6 computes the cost-benefit crossovers.
func RunFig6(Options) (fmt.Stringer, error) {
	res := &Fig6Result{}
	cases := []struct {
		mode  costmodel.TestMode
		loRef dram.Nanoseconds
	}{
		{costmodel.ReadCompare, dram.RefreshWindowDefault},
		{costmodel.CopyCompare, dram.RefreshWindowDefault},
		{costmodel.ReadCompare, dram.RefreshWindow128},
		{costmodel.ReadCompare, dram.RefreshWindow256},
		{costmodel.CopyCompare, dram.RefreshWindow128},
		{costmodel.CopyCompare, dram.RefreshWindow256},
	}
	for _, cse := range cases {
		cfg := costmodel.DefaultConfig()
		cfg.Mode = cse.mode
		cfg.LoRefInterval = cse.loRef
		mwi, err := cfg.MinWriteInterval()
		if err != nil {
			return nil, err
		}
		res.Configs = append(res.Configs, Fig6Config{
			Mode:             cse.mode,
			LoRef:            cse.loRef,
			TestCost:         cfg.TestCost(),
			MinWriteInterval: mwi,
		})
	}
	primary := costmodel.DefaultConfig()
	res.Curve = primary.Curve(1000*dram.Millisecond, 112*dram.Millisecond)
	return res, nil
}

// String renders the Fig. 6 report.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — cost of testing vs aggressive refresh (per row)\n\n")
	t := &table{header: []string{"test mode", "LO-REF", "test cost", "MinWriteInterval"}}
	for _, c := range r.Configs {
		t.addRow(c.Mode.String(),
			fmt.Sprintf("%d ms", c.LoRef/dram.Millisecond),
			fmt.Sprintf("%d ns", c.TestCost),
			fmt.Sprintf("%d ms", c.MinWriteInterval/dram.Millisecond))
	}
	b.WriteString(t.String())
	b.WriteString("\naccumulated cost (Read and Compare, LO-REF 64 ms):\n")
	ct := &table{header: []string{"time (ms)", "HI-REF (ns)", "MEMCON (ns)"}}
	for _, p := range r.Curve {
		ct.addRow(fmt.Sprintf("%d", p.Time/dram.Millisecond),
			fmt.Sprintf("%d", p.HiRef), fmt.Sprintf("%d", p.Memcon))
	}
	b.WriteString(ct.String())
	return b.String()
}

// AppendixResult reports the latency building blocks (paper appendix).
type AppendixResult struct {
	Costs    costmodel.Breakdown
	Reserved float64
}

// RunAppendix computes the appendix numbers.
func RunAppendix(Options) (fmt.Stringer, error) {
	return &AppendixResult{
		Costs:    costmodel.Costs(dram.DDR31600()),
		Reserved: costmodel.CopyCompareReservedRows(512, 8, 262144),
	}, nil
}

// String renders the appendix report.
func (r *AppendixResult) String() string {
	var b strings.Builder
	b.WriteString("Appendix — DDR3-1600 cost building blocks\n\n")
	t := &table{header: []string{"quantity", "value", "paper"}}
	t.addRow("row cycle (tRCD + 128*tCCD + tRP)", fmt.Sprintf("%d ns", r.Costs.RowCycle), "534 ns")
	t.addRow("refresh (tRAS + tRP)", fmt.Sprintf("%d ns", r.Costs.RefreshCost), "39 ns")
	t.addRow("Read and Compare (2 row reads)", fmt.Sprintf("%d ns", r.Costs.ReadCompare), "1068 ns")
	t.addRow("Copy and Compare (2 reads + 1 write)", fmt.Sprintf("%d ns", r.Costs.CopyCompare), "1602 ns")
	t.addRow("Copy and Compare reserved capacity", pct2(r.Reserved), "1.56%")
	b.WriteString(t.String())
	return b.String()
}
