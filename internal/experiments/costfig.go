package experiments

import (
	"fmt"

	"memcon/internal/costmodel"
	"memcon/internal/dram"
	"memcon/internal/report"
)

// Fig6Config is one (test mode, LO-REF) combination of the Fig. 6 study.
type Fig6Config struct {
	Mode             costmodel.TestMode
	LoRef            dram.Nanoseconds
	TestCost         dram.Nanoseconds
	MinWriteInterval dram.Nanoseconds
}

// Fig6Result reproduces Fig. 6: accumulated-cost curves and the
// MinWriteInterval for each test mode / LO-REF interval.
type Fig6Result struct {
	resultMeta
	Configs []Fig6Config
	// Curve samples the primary configuration (Read-and-Compare, 64 ms)
	// like the figure does.
	Curve []costmodel.CurvePoint
}

// RunFig6 computes the cost-benefit crossovers.
func RunFig6(Options) (Result, error) {
	res := &Fig6Result{}
	cases := []struct {
		mode  costmodel.TestMode
		loRef dram.Nanoseconds
	}{
		{costmodel.ReadCompare, dram.RefreshWindowDefault},
		{costmodel.CopyCompare, dram.RefreshWindowDefault},
		{costmodel.ReadCompare, dram.RefreshWindow128},
		{costmodel.ReadCompare, dram.RefreshWindow256},
		{costmodel.CopyCompare, dram.RefreshWindow128},
		{costmodel.CopyCompare, dram.RefreshWindow256},
	}
	for _, cse := range cases {
		cfg := costmodel.DefaultConfig()
		cfg.Mode = cse.mode
		cfg.LoRefInterval = cse.loRef
		mwi, err := cfg.MinWriteInterval()
		if err != nil {
			return nil, err
		}
		res.Configs = append(res.Configs, Fig6Config{
			Mode:             cse.mode,
			LoRef:            cse.loRef,
			TestCost:         cfg.TestCost(),
			MinWriteInterval: mwi,
		})
	}
	primary := costmodel.DefaultConfig()
	res.Curve = primary.Curve(1000*dram.Millisecond, 112*dram.Millisecond)
	return res, nil
}

// Report builds the Fig. 6 document. The curve is the primary table:
// the pre-typed CSV export emitted the accumulated-cost series, and the
// shared renderer keeps that header (time_ms,hiref_ns,memcon_ns).
func (r *Fig6Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Primary = "curve"
	rep.Textf("Fig. 6 — cost of testing vs aggressive refresh (per row)\n\n")
	t := report.NewTable("configs",
		report.CStr("test_mode", "test mode"),
		report.CInt("loref_ms", "LO-REF", "ms"),
		report.CInt("test_cost_ns", "test cost", "ns"),
		report.CInt("min_write_interval_ms", "MinWriteInterval", "ms"))
	for _, c := range r.Configs {
		t.Add(report.S(c.Mode.String()),
			report.Id(int64(c.LoRef/dram.Millisecond), fmt.Sprintf("%d ms", c.LoRef/dram.Millisecond)),
			report.Id(int64(c.TestCost), fmt.Sprintf("%d ns", c.TestCost)),
			report.Id(int64(c.MinWriteInterval/dram.Millisecond), fmt.Sprintf("%d ms", c.MinWriteInterval/dram.Millisecond)))
	}
	rep.AddTable(t)
	rep.Textf("\naccumulated cost (Read and Compare, LO-REF 64 ms):\n")
	ct := report.NewTable("curve",
		report.CInt("time_ms", "time (ms)", "ms"),
		report.CInt("hiref_ns", "HI-REF (ns)", "ns"),
		report.CInt("memcon_ns", "MEMCON (ns)", "ns"))
	for _, p := range r.Curve {
		ct.Add(report.I(int64(p.Time/dram.Millisecond)),
			report.I(int64(p.HiRef)), report.I(int64(p.Memcon)))
	}
	rep.AddTable(ct)
	return rep
}

// String renders the Fig. 6 report as text.
func (r *Fig6Result) String() string { return r.Report().Text() }

// AppendixResult reports the latency building blocks (paper appendix).
type AppendixResult struct {
	resultMeta
	Costs    costmodel.Breakdown
	Reserved float64
}

// RunAppendix computes the appendix numbers.
func RunAppendix(Options) (Result, error) {
	return &AppendixResult{
		Costs:    costmodel.Costs(dram.DDR31600()),
		Reserved: costmodel.CopyCompareReservedRows(512, 8, 262144),
	}, nil
}

// Report builds the appendix document. The value column mixes integer
// nanosecond cells with one float fraction — cells carry their own
// kinds, the column kind records the dominant one.
func (r *AppendixResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Appendix — DDR3-1600 cost building blocks\n\n")
	t := report.NewTable("costs",
		report.CStr("quantity", ""),
		report.CInt("value", "", "ns"),
		report.CStr("paper", ""))
	ns := func(v dram.Nanoseconds) report.Cell {
		return report.Id(int64(v), fmt.Sprintf("%d ns", v))
	}
	t.Add(report.S("row cycle (tRCD + 128*tCCD + tRP)"), ns(r.Costs.RowCycle), report.S("534 ns"))
	t.Add(report.S("refresh (tRAS + tRP)"), ns(r.Costs.RefreshCost), report.S("39 ns"))
	t.Add(report.S("Read and Compare (2 row reads)"), ns(r.Costs.ReadCompare), report.S("1068 ns"))
	t.Add(report.S("Copy and Compare (2 reads + 1 write)"), ns(r.Costs.CopyCompare), report.S("1602 ns"))
	t.Add(report.S("Copy and Compare reserved capacity"), report.F(r.Reserved, pct2(r.Reserved)), report.S("1.56%"))
	rep.AddTable(t)
	return rep
}

// String renders the appendix report as text.
func (r *AppendixResult) String() string { return r.Report().Text() }
