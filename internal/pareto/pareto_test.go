package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistValid(t *testing.T) {
	cases := []struct {
		d    Dist
		want bool
	}{
		{Dist{Xm: 1, Alpha: 1}, true},
		{Dist{Xm: 0, Alpha: 1}, false},
		{Dist{Xm: 1, Alpha: 0}, false},
		{Dist{Xm: -1, Alpha: 2}, false},
		{Dist{Xm: math.Inf(1), Alpha: 2}, false},
	}
	for _, c := range cases {
		if got := c.d.Valid(); got != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestCCDFBasics(t *testing.T) {
	d := Dist{Xm: 2, Alpha: 1.5}
	if got := d.CCDF(1); got != 1 {
		t.Errorf("CCDF below Xm = %v, want 1", got)
	}
	if got := d.CCDF(2); got != 1 {
		t.Errorf("CCDF at Xm = %v, want 1", got)
	}
	want := math.Pow(0.5, 1.5)
	if got := d.CCDF(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("CCDF(4) = %v, want %v", got, want)
	}
	if got := d.CDF(4); math.Abs(got-(1-want)) > 1e-12 {
		t.Errorf("CDF(4) = %v, want %v", got, 1-want)
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	d := Dist{Xm: 3, Alpha: 0.8}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		x := d.Quantile(p)
		if got := d.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestMean(t *testing.T) {
	if m := (Dist{Xm: 1, Alpha: 1}).Mean(); !math.IsInf(m, 1) {
		t.Errorf("Mean at alpha=1 = %v, want +Inf", m)
	}
	if m := (Dist{Xm: 2, Alpha: 3}).Mean(); math.Abs(m-3) > 1e-12 {
		t.Errorf("Mean = %v, want 3", m)
	}
}

func TestSampleRespectsScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Dist{Xm: 5, Alpha: 1.2}
	for i := 0; i < 1000; i++ {
		if x := d.Sample(rng); x < d.Xm {
			t.Fatalf("sample %v below Xm %v", x, d.Xm)
		}
	}
}

func TestSampleMatchesCCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := Dist{Xm: 1, Alpha: 1.5}
	const n = 200000
	var above float64
	threshold := 4.0
	for i := 0; i < n; i++ {
		if d.Sample(rng) > threshold {
			above++
		}
	}
	got := above / n
	want := d.CCDF(threshold)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical CCDF(%v) = %v, analytic %v", threshold, got, want)
	}
}

// Decreasing hazard rate: the conditional probability of surviving a
// further L grows with elapsed time c. This is the property PRIL exploits.
func TestConditionalExceedIncreasesWithElapsed(t *testing.T) {
	d := Dist{Xm: 1, Alpha: 0.9}
	prev := 0.0
	for _, c := range []float64{1, 4, 16, 64, 256, 1024, 4096} {
		p := d.ConditionalExceed(c, 1024)
		if p < prev {
			t.Errorf("ConditionalExceed not monotone: c=%v p=%v prev=%v", c, p, prev)
		}
		prev = p
	}
	if prev < 0.7 {
		t.Errorf("conditional survival at large elapsed = %v, want approaching 1", prev)
	}
}

func TestConditionalExceedProperty(t *testing.T) {
	f := func(alphaRaw, cRaw, lRaw uint16) bool {
		d := Dist{Xm: 1, Alpha: 0.2 + float64(alphaRaw%30)/10}
		c := 1 + float64(cRaw%10000)
		l := 1 + float64(lRaw%10000)
		p := d.ConditionalExceed(c, l)
		// Must be a probability and consistent with the CCDF ratio.
		if p < 0 || p > 1 {
			return false
		}
		want := d.CCDF(c+l) / d.CCDF(c)
		return math.Abs(p-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitCCDFRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truth := Dist{Xm: 2, Alpha: 1.3}
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	fit, err := FitCCDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Dist.Alpha-truth.Alpha) > 0.1 {
		t.Errorf("fitted alpha = %v, want ~%v", fit.Dist.Alpha, truth.Alpha)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v, want >= 0.98 for true Pareto data", fit.R2)
	}
}

func TestFitCCDFErrors(t *testing.T) {
	if _, err := FitCCDF(nil); err != ErrInsufficientData {
		t.Errorf("empty fit error = %v, want ErrInsufficientData", err)
	}
	if _, err := FitCCDF([]float64{1, 2, 3}); err != ErrInsufficientData {
		t.Errorf("tiny fit error = %v, want ErrInsufficientData", err)
	}
	// Increasing-tail (anti-heavy) data should be rejected via alpha <= 0.
	uniformish := make([]float64, 100)
	for i := range uniformish {
		uniformish[i] = 1 // all identical: only one distinct CCDF point
	}
	if _, err := FitCCDF(uniformish); err == nil {
		t.Error("degenerate data should not fit")
	}
}

func TestEmpiricalCCDF(t *testing.T) {
	xs, ps := EmpiricalCCDF([]float64{1, 1, 2, 4})
	if len(xs) != 3 {
		t.Fatalf("distinct points = %d, want 3", len(xs))
	}
	// P(X > 1) = 2/4, P(X > 2) = 1/4, P(X > 4) = 0.
	if ps[0] != 0.5 || ps[1] != 0.25 || ps[2] != 0 {
		t.Errorf("ps = %v, want [0.5 0.25 0]", ps)
	}
}

func TestConditionalExceedEmpirical(t *testing.T) {
	// Intervals: 10 short (5), 5 medium (100), 5 long (2000).
	var samples []float64
	for i := 0; i < 10; i++ {
		samples = append(samples, 5)
	}
	for i := 0; i < 5; i++ {
		samples = append(samples, 100, 2000)
	}
	// Given elapsed >= 50, intervals in play are the 100s and 2000s.
	// Remaining > 1024 requires x > 1074, so only the 2000s qualify.
	got := ConditionalExceedEmpirical(samples, 50, 1024)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("conditional = %v, want 0.5", got)
	}
	if got := ConditionalExceedEmpirical(nil, 1, 1); got != 0 {
		t.Errorf("empty sample conditional = %v, want 0", got)
	}
}

func TestCoverageAtCIL(t *testing.T) {
	samples := []float64{100, 100, 1000}
	// c=100: the two 100s contribute 0, the 1000 contributes 900.
	got := CoverageAtCIL(samples, 100)
	want := 900.0 / 1200.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("coverage = %v, want %v", got, want)
	}
	if got := CoverageAtCIL(nil, 10); got != 0 {
		t.Errorf("empty coverage = %v, want 0", got)
	}
}

// Property: coverage is monotonically non-increasing in the waiting time c,
// the accuracy-vs-coverage tradeoff in Section 4.1.
func TestCoverageMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, r := range raw {
			samples[i] = float64(r) + 1
		}
		prev := 1.1
		for _, c := range []float64{0, 8, 64, 512, 4096, 32768} {
			cov := CoverageAtCIL(samples, c)
			if cov > prev+1e-12 {
				return false
			}
			prev = cov
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
