package pareto

import (
	"math/rand"
	"testing"
)

func TestFitCCDFTailDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := Dist{Xm: 8, Alpha: 0.9}
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	fit, err := FitCCDFTail(samples, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.95 {
		t.Errorf("tail fit R2 = %v on pure Pareto data", fit.R2)
	}
	if fit.Dist.Alpha < 0.7 || fit.Dist.Alpha > 1.1 {
		t.Errorf("tail alpha = %v, want ~0.9", fit.Dist.Alpha)
	}
}

func TestFitCCDFTailMixture(t *testing.T) {
	// A light-tailed body (exponential) polluting a Pareto tail: the
	// naive full-range fit degrades, the tail fit recovers.
	rng := rand.New(rand.NewSource(6))
	truth := Dist{Xm: 64, Alpha: 0.7}
	var samples []float64
	for i := 0; i < 8000; i++ {
		samples = append(samples, rng.ExpFloat64()*20) // body
	}
	for i := 0; i < 3000; i++ {
		samples = append(samples, truth.Sample(rng)) // tail
	}
	full, errFull := FitCCDF(samples)
	tail, errTail := FitCCDFTail(samples, nil, 64)
	if errTail != nil {
		t.Fatal(errTail)
	}
	if errFull == nil && tail.R2 < full.R2 {
		t.Errorf("tail fit R2 %v not above full-range fit %v", tail.R2, full.R2)
	}
	if tail.R2 < 0.9 {
		t.Errorf("tail fit R2 = %v, want >= 0.9", tail.R2)
	}
}

func TestFitCCDFTailErrors(t *testing.T) {
	// Not enough samples above any candidate.
	if _, err := FitCCDFTail([]float64{1, 2, 3}, nil, 64); err == nil {
		t.Error("tiny sample accepted")
	}
	// Candidates that exclude everything.
	if _, err := FitCCDFTail([]float64{1, 2, 3, 4, 5, 6, 7, 8}, []float64{1e12}, 4); err == nil {
		t.Error("empty-tail candidates accepted")
	}
	// Degenerate data above the threshold: FitCCDF errors propagate.
	same := make([]float64, 100)
	for i := range same {
		same[i] = 42
	}
	if _, err := FitCCDFTail(same, []float64{1}, 16); err == nil {
		t.Error("degenerate tail accepted")
	}
}

func TestFitCCDFTailMinTailFloor(t *testing.T) {
	// minTail below 16 is clamped; with 20 samples and the clamp, a
	// candidate at the median keeps >= 16 only at low thresholds.
	rng := rand.New(rand.NewSource(7))
	truth := Dist{Xm: 2, Alpha: 1.2}
	samples := make([]float64, 400)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	fit, err := FitCCDFTail(samples, nil, 1) // clamped to 16 internally
	if err != nil {
		t.Fatal(err)
	}
	if fit.Points < 4 {
		t.Errorf("fit used only %d points", fit.Points)
	}
}

func TestQuantileAtZeroAndMean(t *testing.T) {
	d := Dist{Xm: 5, Alpha: 2}
	if got := d.Quantile(0); got != 5 {
		t.Errorf("Quantile(0) = %v, want Xm", got)
	}
	if got := d.Quantile(-0.5); got != 5 {
		t.Errorf("Quantile(neg) = %v, want Xm", got)
	}
	if m := d.Mean(); m != 10 {
		t.Errorf("Mean = %v, want 10", m)
	}
}
