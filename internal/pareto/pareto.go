// Package pareto implements the Pareto (power-law) distribution machinery
// the MEMCON paper relies on: sampling, CCDF evaluation, empirical CCDF
// construction, log-log linear fitting with R² (Fig. 8), and the
// decreasing-hazard-rate conditionals used by the PRIL predictor
// (Fig. 11: P(remaining interval > L | elapsed >= c)).
package pareto

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"memcon/internal/stats"
)

// Dist is a (Type I) Pareto distribution with scale Xm > 0 and shape
// Alpha > 0. The complementary CDF is P(X > x) = (Xm/x)^Alpha for x >= Xm.
type Dist struct {
	Xm    float64
	Alpha float64
}

// Valid reports whether the distribution parameters are usable.
func (d Dist) Valid() bool {
	return d.Xm > 0 && d.Alpha > 0 && !math.IsInf(d.Xm, 0) && !math.IsInf(d.Alpha, 0)
}

// CCDF returns P(X > x).
func (d Dist) CCDF(x float64) float64 {
	if x <= d.Xm {
		return 1
	}
	return math.Pow(d.Xm/x, d.Alpha)
}

// CDF returns P(X <= x).
func (d Dist) CDF(x float64) float64 { return 1 - d.CCDF(x) }

// Quantile returns the value x with CDF(x) = p for p in [0, 1).
func (d Dist) Quantile(p float64) float64 {
	if p <= 0 {
		return d.Xm
	}
	return d.Xm / math.Pow(1-p, 1/d.Alpha)
}

// Mean returns the distribution mean, or +Inf when Alpha <= 1.
func (d Dist) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Sample draws one value using rng.
func (d Dist) Sample(rng *rand.Rand) float64 {
	// Inverse-transform sampling; 1-Float64() is in (0,1].
	u := 1 - rng.Float64()
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// ConditionalExceed returns P(X > c+L | X > c), the decreasing-hazard-rate
// property MEMCON's PRIL predictor exploits: for a Pareto distribution this
// grows towards 1 as the elapsed time c grows.
func (d Dist) ConditionalExceed(c, l float64) float64 {
	if c < d.Xm {
		c = d.Xm
	}
	return math.Pow(c/(c+l), d.Alpha)
}

// Fit is the result of fitting a Pareto tail to an empirical sample via
// log-log linear regression on the CCDF, the method used in Fig. 8.
type Fit struct {
	Dist Dist
	// R2 is the coefficient of determination of the log-log fit; the
	// paper reports values above 0.93 for its workload traces.
	R2 float64
	// Points is the number of CCDF points used in the regression.
	Points int
}

// ErrInsufficientData indicates there were not enough distinct sample
// values to fit a distribution.
var ErrInsufficientData = errors.New("pareto: insufficient data for fit")

// FitCCDF fits a Pareto distribution to the samples by linear regression
// of log10(CCDF) against log10(x). Samples must be positive; non-positive
// values are ignored. The fit uses one CCDF point per distinct value.
func FitCCDF(samples []float64) (Fit, error) {
	xs := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s > 0 && !math.IsInf(s, 0) && !math.IsNaN(s) {
			xs = append(xs, s)
		}
	}
	if len(xs) < 8 {
		return Fit{}, ErrInsufficientData
	}
	sort.Float64s(xs)

	n := float64(len(xs))
	var logX, logP []float64
	for i := 0; i < len(xs); i++ {
		// Skip duplicates: use the last index for each distinct value so
		// the CCDF point is exact.
		if i+1 < len(xs) && xs[i+1] == xs[i] {
			continue
		}
		ccdf := (n - float64(i+1)) / n
		if ccdf <= 0 {
			continue // the maximum has empirical CCDF 0; log undefined
		}
		logX = append(logX, math.Log10(xs[i]))
		logP = append(logP, math.Log10(ccdf))
	}
	if len(logX) < 4 {
		return Fit{}, ErrInsufficientData
	}
	lf, err := stats.FitLine(logX, logP)
	if err != nil {
		return Fit{}, err
	}
	alpha := -lf.Slope
	if alpha <= 0 {
		return Fit{}, errors.New("pareto: fitted non-positive alpha; data is not heavy-tailed")
	}
	// log10 P = log10 k - alpha*log10 x, with k = Xm^alpha.
	k := math.Pow(10, lf.Intercept)
	xm := math.Pow(k, 1/alpha)
	return Fit{
		Dist:   Dist{Xm: xm, Alpha: alpha},
		R2:     lf.R2,
		Points: len(logX),
	}, nil
}

// FitCCDFTail fits a Pareto distribution to the heavy tail of a sample
// whose body may be polluted by a lighter-tailed mixture component (the
// standard situation for write intervals: short pauses coexist with the
// Pareto idle tail). It tries each candidate lower threshold, fits the
// sub-sample at or above it, and returns the fit with the best R² among
// thresholds that keep at least minTail samples — a lightweight version
// of the usual xmin-selection for power-law fitting. Candidates default
// to powers of two from 1 to 4096 when nil.
func FitCCDFTail(samples []float64, candidates []float64, minTail int) (Fit, error) {
	if candidates == nil {
		for x := 1.0; x <= 4096; x *= 2 {
			candidates = append(candidates, x)
		}
	}
	if minTail < 16 {
		minTail = 16
	}
	best := Fit{R2: -1}
	var firstErr error
	for _, c := range candidates {
		var tail []float64
		for _, s := range samples {
			if s >= c {
				tail = append(tail, s)
			}
		}
		if len(tail) < minTail {
			continue
		}
		fit, err := FitCCDF(tail)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if fit.R2 > best.R2 {
			best = fit
		}
	}
	if best.R2 < 0 {
		if firstErr != nil {
			return Fit{}, firstErr
		}
		return Fit{}, ErrInsufficientData
	}
	return best, nil
}

// EmpiricalCCDF returns (xs, ps) points of the empirical complementary
// CDF of the samples, one point per distinct value, suitable for
// plotting or fitting. Non-positive samples are ignored.
func EmpiricalCCDF(samples []float64) (xs, ps []float64) {
	vals := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s > 0 && !math.IsNaN(s) && !math.IsInf(s, 0) {
			vals = append(vals, s)
		}
	}
	sort.Float64s(vals)
	n := float64(len(vals))
	for i := 0; i < len(vals); i++ {
		if i+1 < len(vals) && vals[i+1] == vals[i] {
			continue
		}
		xs = append(xs, vals[i])
		ps = append(ps, (n-float64(i+1))/n)
	}
	return xs, ps
}

// ConditionalExceedEmpirical computes P(X > c+L | X >= c) from a sample,
// the empirical form of Fig. 11: of all intervals at least c long, the
// fraction whose remaining length exceeds L.
func ConditionalExceedEmpirical(samples []float64, c, l float64) float64 {
	var atLeastC, exceed int
	for _, x := range samples {
		if x >= c {
			atLeastC++
			if x > c+l {
				exceed++
			}
		}
	}
	if atLeastC == 0 {
		return 0
	}
	return float64(exceed) / float64(atLeastC)
}

// CoverageAtCIL computes the Fig. 12 metric: the fraction of the total
// write-interval time that remains exploitable when prediction waits for
// an elapsed time of c before declaring an interval long. Intervals
// shorter than c contribute nothing; longer intervals contribute their
// remaining length x-c.
func CoverageAtCIL(samples []float64, c float64) float64 {
	var total, covered float64
	for _, x := range samples {
		if x <= 0 {
			continue
		}
		total += x
		if x > c {
			covered += x - c
		}
	}
	if total == 0 {
		return 0
	}
	return covered / total
}
