// Package memcon is the public facade of the MEMCON reproduction — a
// memory-content-based detection and mitigation mechanism for
// data-dependent DRAM failures (Khan et al., MICRO 2017).
//
// The library is organized as one package per subsystem under internal/;
// this package re-exports the types and entry points a downstream user
// needs:
//
//   - Engine / Run: the trace-driven MEMCON engine (PRIL prediction,
//     online testing, multi-rate refresh accounting).
//   - System / Chip: the full-fidelity mode against a simulated DRAM
//     chip with a physically grounded data-dependent failure model.
//   - Workloads and experiments: the paper's evaluation, regenerable
//     table by table and figure by figure.
//
// # Quick start
//
//	app, _ := memcon.AppByName("Netflix")
//	tr := app.Generate(1, 1.0)
//	rep, _ := memcon.Run(tr, memcon.DefaultConfig(), nil)
//	fmt.Printf("refresh reduction: %.1f%%\n", 100*rep.RefreshReduction())
package memcon

import (
	"context"
	"fmt"
	"io"
	"time"

	"memcon/internal/core"
	"memcon/internal/costmodel"
	"memcon/internal/dram"
	"memcon/internal/experiments"
	"memcon/internal/faults"
	"memcon/internal/obs"
	"memcon/internal/softmc"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

// Core engine types.
type (
	// Config parameterizes the MEMCON engine (quantum, HI/LO refresh
	// intervals, test mode, PRIL buffer capacity).
	Config = core.Config
	// Report is the outcome of an engine run: refresh operations,
	// testing costs, LO-REF coverage, prediction accuracy.
	Report = core.Report
	// Engine is the event-driven MEMCON engine.
	Engine = core.Engine
	// System is the full-fidelity engine bound to a simulated chip.
	System = core.System
	// Tester decides online test outcomes (see AlwaysPass).
	Tester = core.Tester
	// TesterFunc adapts a function to Tester.
	TesterFunc = core.TesterFunc
)

// Trace types.
type (
	// Trace is a time-ordered page write stream.
	Trace = trace.Trace
	// Event is a single write.
	Event = trace.Event
	// TraceSource is a forward-only event stream — either a
	// materialized Trace (via its Source method) or an incremental
	// TraceStream over a compact file.
	TraceSource = trace.Source
	// TraceStream incrementally decodes a compact (v2) trace file with
	// constant memory; it implements TraceSource.
	TraceStream = trace.Stream
)

// NewTraceStream opens a compact (v2) trace stream over r; events
// decode lazily, so multi-GB traces replay at I/O speed with O(pages)
// memory through RunSource.
func NewTraceStream(r io.Reader) (*TraceStream, error) { return trace.NewStream(r) }

// Workload types.
type (
	// AppSpec generates a long-running application write trace.
	AppSpec = workload.AppSpec
	// ContentSpec generates SPEC-like memory-content images.
	ContentSpec = workload.ContentSpec
)

// DRAM and fault-model types.
type (
	// Geometry describes a DRAM module.
	Geometry = dram.Geometry
	// Module is the system-visible DRAM state.
	Module = dram.Module
	// FaultModel decides which cells flip under which content.
	FaultModel = faults.Model
	// ChipTester is the SoftMC-style characterization harness.
	ChipTester = softmc.Tester
)

// Observability types, re-exported from internal/obs. An Observer
// receives the engine's structured lifecycle events; a Registry plus
// Metrics aggregates them into counters, gauges and log-scale
// histograms ready for JSON or Prometheus exposition.
type (
	// Observer receives structured engine lifecycle events.
	Observer = obs.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = obs.ObserverFunc
	// ObserverEvent is one structured lifecycle event. (The name Event
	// is taken by the trace event type above.)
	ObserverEvent = obs.Event
	// EventKind discriminates ObserverEvent payloads.
	EventKind = obs.Kind
	// Registry holds named metrics and renders them as JSON,
	// Prometheus text exposition, or a human table.
	Registry = obs.Registry
	// Metrics is an Observer that aggregates events into a Registry.
	Metrics = obs.Metrics
	// Recorder is an Observer that retains every event, for tests.
	Recorder = obs.Recorder
)

// Event kinds (see the internal/obs package documentation for each
// payload's Page/At/Aux semantics).
const (
	KindWrite          = obs.KindWrite
	KindPredict        = obs.KindPredict
	KindTestQueued     = obs.KindTestQueued
	KindTestDrained    = obs.KindTestDrained
	KindTestAborted    = obs.KindTestAborted
	KindRefreshToLo    = obs.KindRefreshToLo
	KindRefreshToHi    = obs.KindRefreshToHi
	KindRefreshRateSet = obs.KindRefreshRateSet
	KindPrilInsert     = obs.KindPrilInsert
	KindPrilEvict      = obs.KindPrilEvict
	KindPrilDiscard    = obs.KindPrilDiscard
	KindRemapHit       = obs.KindRemapHit
	KindSilentWrite    = obs.KindSilentWrite
	KindNeighborRetest = obs.KindNeighborRetest
	KindRowFailure     = obs.KindRowFailure
	KindRowWeak        = obs.KindRowWeak
	KindRunDone        = obs.KindRunDone
)

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewMetrics creates the aggregating observer over reg, registering
// the full memcon_* metric family eagerly so sinks always render a
// complete document.
func NewMetrics(reg *Registry) *Metrics { return obs.NewMetrics(reg) }

// TeeObservers fans events out to every non-nil observer; it returns
// nil when all are nil.
func TeeObservers(os ...Observer) Observer { return obs.Tee(os...) }

// Option customizes engine construction (see New).
type Option = core.EngineOption

// WithTester installs the online-test oracle. A nil tester (or no
// WithTester option at all) selects AlwaysPass, the accounting mode.
func WithTester(t Tester) Option { return core.WithTester(t) }

// WithObserver installs a structured-event observer on the engine
// lifecycle. A nil observer disables observation; the disabled event
// path costs a nil check and performs no allocation.
func WithObserver(o Observer) Option { return core.WithObserver(o) }

// WithClock injects the wall-clock source used for the run-duration
// event (KindRunDone). It never influences simulation results.
func WithClock(now func() time.Time) Option { return core.WithClock(now) }

// AlwaysPass is the accounting-mode tester: every online test passes.
var AlwaysPass = core.AlwaysPass

// DefaultConfig returns the paper's primary configuration (1024 ms
// quantum, HI-REF 16 ms, LO-REF 64 ms, Read-and-Compare).
func DefaultConfig() Config { return core.DefaultConfig() }

// Run replays a write trace through a fresh MEMCON engine.
func Run(tr *Trace, cfg Config, tester Tester) (Report, error) {
	return core.Run(tr, cfg, tester)
}

// RunWith replays a write trace through a fresh MEMCON engine built
// with the given options — the observable form of Run:
//
//	reg := memcon.NewRegistry()
//	rep, err := memcon.RunWith(tr, cfg, memcon.WithObserver(memcon.NewMetrics(reg)))
func RunWith(tr *Trace, cfg Config, opts ...Option) (Report, error) {
	return core.RunWith(tr, cfg, opts...)
}

// RunContext is RunWith under a cancellation context, checked between
// event batches.
func RunContext(ctx context.Context, tr *Trace, cfg Config, opts ...Option) (Report, error) {
	return core.RunContext(ctx, tr, cfg, opts...)
}

// RunSource replays a streaming event source through a fresh MEMCON
// engine, growing the page space on demand as the source reveals it:
//
//	s, _ := memcon.NewTraceStream(f)
//	rep, err := memcon.RunSource(ctx, s, memcon.DefaultConfig())
func RunSource(ctx context.Context, src TraceSource, cfg Config, opts ...Option) (Report, error) {
	return core.RunSource(ctx, src, cfg, opts...)
}

// New builds an incremental engine with functional options; feed it
// events with Observe and close it with Finish. (The pre-options
// NewEngine(cfg, tester) constructor, deprecated since the functional-
// options redesign, has been removed: it was exactly
// New(cfg, WithTester(tester)).)
func New(cfg Config, opts ...Option) (*Engine, error) {
	return core.New(cfg, opts...)
}

// Apps returns the twelve long-running application workload generators
// (Table 1 analogues).
func Apps() []AppSpec { return workload.Apps() }

// AppByName returns one application generator by name.
func AppByName(name string) (AppSpec, error) { return workload.AppByName(name) }

// SPECContents returns the twenty SPEC CPU2006 content synthesizers.
func SPECContents() []ContentSpec { return workload.SPECContents() }

// Chip bundles a simulated DRAM chip: module, vendor scrambling, fault
// model, and a characterization tester.
type Chip struct {
	Module *Module
	Model  *FaultModel
	Tester *ChipTester
}

// NewChip builds a simulated chip with the given geometry and seed using
// fault-model parameters scaled to the LO-REF window, ready for use with
// NewSystem or the softmc characterization flows. It uses the default
// vendor address mapping; NewChipMapped selects another.
func NewChip(geom Geometry, seed uint64) (*Chip, error) {
	return NewChipMapped(geom, seed, "")
}

// MappingNames lists the registered vendor address-mapping schemes a
// chip can be built with (see NewChipMapped).
func MappingNames() []string { return dram.MappingNames() }

// NewChipMapped is NewChip with an explicit vendor address-mapping
// scheme; the empty string and "default" both select the original
// scrambler, and unknown names are errors naming the registry.
func NewChipMapped(geom Geometry, seed uint64, mapping string) (*Chip, error) {
	scr, err := dram.NewMappedScrambler(geom, seed, nil, mapping)
	if err != nil {
		return nil, fmt.Errorf("memcon: %w", err)
	}
	model, err := faults.NewModel(geom, scr, seed, faults.ParamsForRefresh(dram.RefreshWindowDefault))
	if err != nil {
		return nil, fmt.Errorf("memcon: building fault model: %w", err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		return nil, fmt.Errorf("memcon: building module: %w", err)
	}
	tester, err := softmc.NewTester(mod, model)
	if err != nil {
		return nil, fmt.Errorf("memcon: building tester: %w", err)
	}
	return &Chip{Module: mod, Model: model, Tester: tester}, nil
}

// DefaultGeometry returns a modest chip geometry for experimentation.
func DefaultGeometry() Geometry { return dram.DefaultGeometry() }

// NewSystem binds the MEMCON engine to a simulated chip for
// full-fidelity runs (real content, real failures, reliability audit).
// Options apply to the embedded engine; the system supplies its own
// silicon-backed tester, so WithTester is overridden.
func NewSystem(cfg Config, chip *Chip, opts ...Option) (*System, error) {
	return core.NewSystem(cfg, chip.Module, chip.Model, opts...)
}

// MinWriteInterval returns the minimum interval between writes to a row
// that amortizes an online test, for the paper's primary configuration
// (560 ms: Read-and-Compare at 64 ms LO-REF).
func MinWriteInterval() dram.Nanoseconds {
	mwi, err := costmodel.DefaultConfig().MinWriteInterval()
	if err != nil {
		// The default configuration is statically valid; reaching this
		// indicates library corruption.
		panic(err)
	}
	return mwi
}

// Experiment runs one of the paper's evaluation artifacts by id (fig3,
// fig4, fig6..fig19, table1, table3, minwi) and returns its rendered
// report. Options zero-value means full scale.
func Experiment(id string, opts ExperimentOptions) (fmt.Stringer, error) {
	return experiments.Run(id, opts)
}

// ExperimentOptions tunes experiment scale and seeds.
type ExperimentOptions = experiments.Options

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }

// ReadSkipAnalysis quantifies the refresh operations a read-aware
// controller could skip for the given READ trace and refresh interval —
// the paper's footnote-3 future-work optimization, implemented.
func ReadSkipAnalysis(reads *Trace, interval dram.Nanoseconds) (core.ReadSkipReport, error) {
	return core.ReadSkipAnalysis(reads, interval)
}

// CombinedSavings composes a MEMCON run's refresh reduction with
// read-aware skipping of the residual refreshes.
func CombinedSavings(rep Report, rs core.ReadSkipReport) float64 {
	return core.CombinedSavings(rep, rs)
}

// NewRepeatingContent builds a content source that rewrites previous
// content with the given probability — the silent-store workload for
// System.EnableSilentWriteDetection.
func NewRepeatingContent(silentProb float64, seed int64) *core.RepeatingContent {
	return core.NewRepeatingContent(silentProb, seed)
}
