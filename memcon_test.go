package memcon

import (
	"strings"
	"testing"

	"memcon/internal/trace"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestMinWriteInterval(t *testing.T) {
	if got := MinWriteInterval(); got != 560*1000*1000 {
		t.Errorf("MinWriteInterval = %d ns, want 560 ms", got)
	}
}

func TestRunFacade(t *testing.T) {
	tr := &Trace{
		Name:     "facade",
		Duration: 20 * 1024 * trace.Millisecond,
		Events:   []Event{{Page: 0, At: 0}},
	}
	rep, err := Run(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefreshReduction() <= 0 {
		t.Errorf("reduction = %v, want positive", rep.RefreshReduction())
	}
}

func TestAppsFacade(t *testing.T) {
	if len(Apps()) != 12 {
		t.Errorf("apps = %d, want 12", len(Apps()))
	}
	app, err := AppByName("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	tr := app.Generate(1, 0.02)
	if len(tr.Events) == 0 {
		t.Error("empty generated trace")
	}
	if len(SPECContents()) != 20 {
		t.Errorf("SPEC contents = %d, want 20", len(SPECContents()))
	}
}

func TestNewChipAndSystem(t *testing.T) {
	geom := DefaultGeometry()
	geom.RowsPerBank = 128
	geom.BanksPerChip = 2
	chip, err := NewChip(geom, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(DefaultConfig(), chip)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{
		Duration: 10 * 1024 * trace.Millisecond,
		Events:   []Event{{Page: 0, At: 0}, {Page: 1, At: 100}},
	}
	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsStarted == 0 {
		t.Error("no tests started in system run")
	}
	if sys.UndetectedFailures() != 0 {
		t.Errorf("undetected failures = %d", sys.UndetectedFailures())
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 17 {
		t.Errorf("experiment ids = %d, want >= 17", len(ids))
	}
	out, err := Experiment("minwi", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1068") {
		t.Error("appendix experiment missing expected values")
	}
	if _, err := Experiment("bogus", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNewIncremental(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPages = 4
	e, err := New(cfg, WithTester(AlwaysPass))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(Event{Page: 2, At: 0}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Finish(8 * 1024 * trace.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsCompleted != 1 {
		t.Errorf("tests completed = %d, want 1", rep.TestsCompleted)
	}
}
