package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memcon/internal/fleet"
	"memcon/internal/report"
)

// TestFleetOutWritesDecodableLog pins the -fleet-out path: the file is
// a valid compact CE log whose shape matches the run the report
// describes, and it is byte-identical for any -parallel value.
func TestFleetOutWritesDecodableLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "fleet.celog")
	var out strings.Builder
	args := append([]string{"-exp", "fleet-ce", "-out", dir, "-fleet-out", logPath}, goldenArgs...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	log, err := fleet.ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding -fleet-out file: %v", err)
	}
	rep := decodeFile(t, filepath.Join(dir, "fleet-ce.json"))
	if log.Modules != rep.Prov.Fleet {
		t.Errorf("log has %d modules, report provenance says %d", log.Modules, rep.Prov.Fleet)
	}
	if len(log.Events) == 0 {
		t.Error("captured CE log is empty")
	}

	for _, n := range []string{"4", "8"} {
		p := filepath.Join(dir, "fleet"+n+".celog")
		if err := run(append([]string{"-exp", "fleet-ce", "-fleet-out", p, "-parallel", n}, goldenArgs...), &out); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, raw) {
			t.Errorf("-fleet-out file differs between -parallel 1 and -parallel %s", n)
		}
	}
}

// TestFleetDiff exercises the fleet save/verify loop: a bare -diff
// re-runs with the saved fleet size and comes back clean, injected
// drift in the risk numbers fails, and a fleet-size mismatch — whether
// a tampered provenance or an explicit -fleet override — gates rather
// than comparing incomparable runs.
func TestFleetDiff(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(append([]string{"-exp", "fleet-risk", "-out", dir}, goldenArgs...), &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fleet-risk.json")

	out.Reset()
	if err := run([]string{"-diff", path}, &out); err != nil {
		t.Fatalf("clean diff failed: %v\n%s", err, out.String())
	}

	// Drift one float cell (a risk score or a scoreboard rate).
	rep := decodeFile(t, path)
	drifted := false
search:
	for _, tab := range rep.Tables() {
		for ri := range tab.Rows {
			for ci := range tab.Rows[ri].Cells {
				c := &tab.Rows[ri].Cells[ci]
				if c.Kind == report.KindFloat {
					c.Float += 0.001
					drifted = true
					break search
				}
			}
		}
	}
	if !drifted {
		t.Fatal("fleet report has no float cells to drift")
	}
	bad := filepath.Join(dir, "drifted.json")
	encodeFile(t, bad, rep)
	out.Reset()
	if err := run([]string{"-diff", bad}, &out); err == nil {
		t.Errorf("injected drift not detected:\n%s", out.String())
	}

	// A tampered fleet size re-runs at the tampered size; the numbers
	// (and the provenance echo) must not diff clean against the saved
	// 8-module run.
	rep = decodeFile(t, path)
	rep.Prov.Fleet++
	tampered := filepath.Join(dir, "tampered.json")
	encodeFile(t, tampered, rep)
	out.Reset()
	if err := run([]string{"-diff", tampered, "-tol-abs", "1e9", "-tol-rel", "1"}, &out); err == nil {
		t.Errorf("fleet-size tamper not detected:\n%s", out.String())
	}

	// An explicit -fleet override beats the saved provenance and gates.
	out.Reset()
	if err := run([]string{"-diff", path, "-fleet", "16"}, &out); err == nil {
		t.Errorf("-fleet override diffed clean against a different fleet size:\n%s", out.String())
	} else if !strings.Contains(out.String(), "provenance.fleet") {
		t.Errorf("override diff did not name provenance.fleet:\n%s", out.String())
	}
}

// TestFleetOutUsageErrors pins the -fleet-out preconditions: it needs
// -exp, and the experiment must actually produce a CE log.
func TestFleetOutUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-all", "-fleet-out", "x.celog"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-fleet-out requires -exp") {
		t.Errorf("-all with -fleet-out: err = %v", err)
	}
	if err := run([]string{"-exp", "minwi", "-fleet-out", filepath.Join(t.TempDir(), "x.celog")}, &out); err == nil ||
		!strings.Contains(err.Error(), "no CE event log") {
		t.Errorf("-fleet-out on non-fleet experiment: err = %v", err)
	}
	if err := run([]string{"-exp", "fleet-ce", "-fleet", "-1"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-fleet must be non-negative") {
		t.Errorf("negative -fleet: err = %v", err)
	}
}

// TestFleetTextParallelInvariant pins the CLI-level determinism
// contract for the fleet experiments' text rendering.
func TestFleetTextParallelInvariant(t *testing.T) {
	assertParallelInvariant(t, append([]string{"-exp", "fleet-ce"}, goldenArgs...)...)
	assertParallelInvariant(t, append([]string{"-exp", "fleet-risk"}, goldenArgs...)...)
}
