// Command memconsim regenerates the MEMCON paper's evaluation artifacts.
// Each table and figure of the evaluation is an experiment id; running
// an id prints the same rows/series the paper reports.
//
// Usage:
//
//	memconsim -list
//	memconsim -exp fig14 [-scale 0.5] [-seed 42] [-parallel 4]
//	memconsim -all [-scale 0.2]
//	memconsim -replay trace.bin
//
// -replay runs a tracegen-written trace file through the MEMCON engine:
// compact (v2) files stream at I/O speed with O(pages) memory, v1 files
// are materialized; the printed report is identical either way.
//
// Performance experiments (fig15, fig16, table3) additionally honour
// -simtime and -mixes. -parallel bounds the worker pool used inside
// each experiment's sweep; results are byte-identical for any value.
//
// Observability:
//
//	memconsim -exp fig14 -metrics out.json             # aggregated metrics (JSON)
//	memconsim -all -metrics out.prom -metrics-format prom
//	memconsim -exp fig15 -pprof localhost:6060         # live pprof while running
//	memconsim -exp fig15 -trace run.trace              # runtime execution trace
//
// The json and prom metric documents contain only deterministic
// aggregates and are byte-identical for any -parallel value; the table
// format additionally shows volatile wall-clock data (per-experiment
// phase timings, per-worker pool utilization).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"memcon/internal/core"
	"memcon/internal/experiments"
	"memcon/internal/obs"
	"memcon/internal/parallel"
	"memcon/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "memconsim: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	return runCtx(context.Background(), args, out)
}

// runCtx is run with a cancellation context: interrupting the process
// stops in-flight sweeps at the next work-unit boundary.
func runCtx(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("memconsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		list     = fs.Bool("list", false, "list available experiments")
		exp      = fs.String("exp", "", "experiment id to run (see -list)")
		all      = fs.Bool("all", false, "run every experiment")
		scale    = fs.Float64("scale", 1.0, "workload scale in (0,1]")
		seed     = fs.Int64("seed", 42, "random seed")
		simtime  = fs.Int64("simtime", 500_000, "performance-simulation time per run (ns)")
		mixes    = fs.Int("mixes", 30, "multiprogrammed mixes for performance runs")
		csvOut   = fs.Bool("csv", false, "emit CSV instead of the text table (series experiments)")
		nworkers = fs.Int("parallel", runtime.NumCPU(), "worker count for experiment sweeps (results are identical for any value)")
		replay   = fs.String("replay", "", "replay a trace file (tracegen output, v1 or compact) through the MEMCON engine and print its report")
		metrics  = fs.String("metrics", "", `write aggregated run metrics to this file ("-" for stdout)`)
		mformat  = fs.String("metrics-format", "json", "metrics output format: json, prom, or table")
		pprofOn  = fs.String("pprof", "", "serve net/http/pprof on this address while running (e.g. localhost:6060)")
		traceOut = fs.String("trace", "", "write a runtime execution trace to this file (inspect with go tool trace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nworkers < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *nworkers)
	}
	format, err := obs.ParseFormat(*mformat)
	if err != nil {
		return err
	}
	if *pprofOn != "" {
		bound, stopPprof, err := obs.StartPprof(*pprofOn)
		if err != nil {
			return err
		}
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "memconsim: pprof at http://%s/debug/pprof/\n", bound)
	}
	if *traceOut != "" {
		stopTrace, err := obs.StartTrace(*traceOut)
		if err != nil {
			return err
		}
		defer stopTrace() //nolint:errcheck // flush error surfaced via the file below
	}

	opts := experiments.Options{
		Scale: *scale, Seed: *seed, SimTimeNs: *simtime, Mixes: *mixes,
		Workers: *nworkers, Ctx: ctx,
	}

	// -metrics attaches the aggregating observer plus the volatile
	// wall-clock collectors (phase timer, pool utilization). Only the
	// latter two vary across runs; the json/prom documents exclude them.
	var reg *obs.Registry
	var phases *obs.PhaseTimer
	var pool *parallel.PoolStats
	if *metrics != "" {
		reg = obs.NewRegistry()
		phases = obs.NewPhaseTimer(nil)
		pool = parallel.NewPoolStats()
		opts.Observer = obs.NewMetrics(reg)
		opts.Phases = phases
		opts.Ctx = parallel.ContextWithStats(ctx, pool)
	}

	runErr := func() error {
		switch {
		case *list:
			for _, id := range experiments.IDs() {
				desc, err := experiments.Describe(id)
				if err != nil {
					return fmt.Errorf("describing %s: %w", id, err)
				}
				fmt.Fprintf(out, "%-10s %s\n", id, desc)
			}
			return nil
		case *all:
			return runAll(opts.Ctx, out, opts, *csvOut)
		case *exp != "":
			return runOne(out, *exp, opts, *csvOut)
		case *replay != "":
			return runReplay(opts.Ctx, out, *replay)
		default:
			fs.Usage()
			return fmt.Errorf("one of -list, -exp, -all, or -replay is required")
		}
	}()
	if runErr != nil {
		return runErr
	}
	if reg != nil {
		phases.ExportTo(reg)
		pool.ExportTo(reg)
		return writeMetrics(*metrics, out, reg, format)
	}
	return nil
}

// runReplay replays a trace file through the MEMCON engine under the
// default configuration and prints the deterministic report summary.
// Compact (v2) files replay through trace.Stream without materializing
// the event slice — O(pages) memory at I/O speed; v1 files are
// materialized. Both paths print the identical summary for the same
// logical trace.
func runReplay(ctx context.Context, out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	format, err := trace.DetectFormat(br)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	var name string
	var rep core.Report
	switch format {
	case trace.FormatCompact:
		s, err := trace.NewStream(br)
		if err != nil {
			return err
		}
		name = s.Name()
		if rep, err = core.RunSource(ctx, s, cfg); err != nil {
			return err
		}
	case trace.FormatV1:
		tr, err := trace.Read(br)
		if err != nil {
			return err
		}
		name = tr.Name
		if rep, err = core.RunContext(ctx, tr, cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%s: not a trace file (unknown magic)", path)
	}
	fmt.Fprintf(out, "trace %s: %d writes over %.2f s, %d pages\n",
		name, rep.Pril.Writes, float64(rep.Duration)/float64(trace.Second), rep.Pages)
	fmt.Fprintf(out, "  refresh reduction   %.4f (upper bound %.4f)\n",
		rep.RefreshReduction(), rep.UpperBoundReduction())
	fmt.Fprintf(out, "  lo-ref coverage     %.4f\n", rep.LoRefCoverage())
	fmt.Fprintf(out, "  tests               started %d, completed %d, aborted %d\n",
		rep.TestsStarted, rep.TestsCompleted, rep.TestsAborted)
	fmt.Fprintf(out, "  predictions         %d (correct %d, mispredicted %d)\n",
		rep.Pril.Predictions, rep.CorrectTests, rep.MispredictedTests)
	return nil
}

// writeMetrics renders the registry to path ("-" selects the CLI
// output stream).
func writeMetrics(path string, out io.Writer, reg *obs.Registry, format obs.Format) error {
	if path == "-" {
		return reg.Write(out, format)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics file: %w", err)
	}
	if err := reg.Write(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runAll executes every experiment. The experiments themselves run
// concurrently (each rendered to its own buffer) and the reports are
// printed in registry order, so the output matches a serial -all run
// byte for byte. Workers inside each experiment are left at 1: the
// -parallel budget is spent across experiments here, not within them.
func runAll(ctx context.Context, out io.Writer, opts experiments.Options, asCSV bool) error {
	ids := experiments.IDs()
	inner := opts
	inner.Workers = 1
	reports, err := parallel.Map(ctx, len(ids), opts.Workers, func(i int) (string, error) {
		var b strings.Builder
		if err := runOne(&b, ids[i], inner, asCSV); err != nil {
			return "", err
		}
		return b.String(), nil
	})
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Fprint(out, r)
	}
	return nil
}

func runOne(out io.Writer, id string, opts experiments.Options, asCSV bool) error {
	res, err := experiments.Run(id, opts)
	if err != nil {
		return fmt.Errorf("running %s: %w", id, err)
	}
	if asCSV {
		c, ok := res.(experiments.CSVer)
		if !ok {
			return fmt.Errorf("experiment %s has no CSV form (use the text output)", id)
		}
		text, err := experiments.CSV(c)
		if err != nil {
			return err
		}
		fmt.Fprint(out, text)
		return nil
	}
	fmt.Fprintf(out, "==== %s ====\n%s\n", id, res)
	return nil
}
