// Command memconsim regenerates the MEMCON paper's evaluation artifacts.
// Each table and figure of the evaluation is an experiment id; running
// an id prints the same rows/series the paper reports.
//
// Usage:
//
//	memconsim -list
//	memconsim -exp fig14 [-scale 0.5] [-seed 42] [-parallel 4]
//	memconsim -all [-scale 0.2]
//	memconsim -replay trace.bin
//
// -replay runs a tracegen-written trace file through the MEMCON engine:
// compact (v2) files stream at I/O speed with O(pages) memory, v1 files
// are materialized; the printed report is identical either way.
//
// Performance experiments (fig15, fig16, table3) additionally honour
// -simtime and -mixes. -parallel bounds the worker pool used inside
// each experiment's sweep; results are byte-identical for any value.
//
// Fleet experiments (fleet-ce, fleet-risk) honour -fleet, the module
// count of the simulated deployment (0, the default, derives a
// scale-proportional size: 160 modules at -scale 1). With -exp, the
// raw CE event log of a fleet run can additionally be captured in the
// compact streaming format:
//
//	memconsim -exp fleet-ce -fleet 1000 -fleet-out fleet.celog
//
// Read-disturb experiments (disturb-exposure, disturb-mitigation)
// honour -disturb, the RowHammer mitigation spec. The bare policy names
// compose with their parameter flags:
//
//	memconsim -exp disturb-mitigation -disturb para -para-p 0.01
//	memconsim -exp disturb-mitigation -disturb prac -prac-threshold 2048
//	memconsim -exp disturb-mitigation -disturb para:0.01   # equivalent full spec
//
// Structured reports:
//
//	memconsim -exp fig14 -format csv             # primary data table as RFC-4180 CSV
//	memconsim -exp fig14 -format json            # canonical JSON report document
//	memconsim -all -out reports/                 # write reports/<id>.json per experiment
//	memconsim -diff reports/fig14.json           # re-run and diff; non-zero exit on drift
//
// Every experiment produces a typed report (provenance header plus
// typed tables); -format selects the rendering. -diff re-runs the
// experiment named in a saved report's provenance by round-tripping the
// provenance through experiments.Request (decode → Normalize →
// RunRequest), using the saved inputs (seed, scale, simtime, mixes,
// fleet, mapping, disturb, version) unless overridden on the command
// line, and fails when any value drifts beyond -tol-abs/-tol-rel.
//
// Observability:
//
//	memconsim -exp fig14 -metrics out.json             # aggregated metrics (JSON)
//	memconsim -all -metrics out.prom -metrics-format prom
//	memconsim -exp fig15 -pprof localhost:6060         # live pprof while running
//	memconsim -exp fig15 -trace run.trace              # runtime execution trace
//
// The json and prom metric documents contain only deterministic
// aggregates and are byte-identical for any -parallel value; the table
// format additionally shows volatile wall-clock data (per-experiment
// phase timings, per-worker pool utilization).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"memcon/internal/core"
	"memcon/internal/dram"
	"memcon/internal/experiments"
	"memcon/internal/obs"
	"memcon/internal/parallel"
	"memcon/internal/report"
	"memcon/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "memconsim: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	return runCtx(context.Background(), args, out)
}

// runCtx is run with a cancellation context: interrupting the process
// stops in-flight sweeps at the next work-unit boundary.
func runCtx(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("memconsim", flag.ContinueOnError)
	fs.SetOutput(out)
	defaults := experiments.DefaultOptions()
	var (
		list     = fs.Bool("list", false, "list available experiments")
		exp      = fs.String("exp", "", "experiment id to run (see -list)")
		all      = fs.Bool("all", false, "run every experiment")
		scale    = fs.Float64("scale", defaults.Scale, "workload scale in (0,1]")
		seed     = fs.Int64("seed", defaults.Seed, "random seed (0 is honoured when set explicitly)")
		simtime  = fs.Int64("simtime", defaults.SimTimeNs, "performance-simulation time per run (ns)")
		mixes    = fs.Int("mixes", defaults.Mixes, "multiprogrammed mixes for performance runs")
		fleetN   = fs.Int("fleet", 0, "module count for fleet experiments (0 derives a scale-proportional size)")
		mapping  = fs.String("mapping", "", "address mapping for chip-level experiments: "+strings.Join(dram.MappingNames(), ", ")+" (default mapping when empty)")
		disturb  = fs.String("disturb", "", `RowHammer mitigation for disturb experiments: none, para, prac, or a full spec like "para:0.001"`)
		paraP    = fs.Float64("para-p", 0.001, "PARA per-activation refresh probability (with -disturb para)")
		pracN    = fs.Int64("prac-threshold", 4096, "PRAC mitigation period in activations (with -disturb prac)")
		fleetOut = fs.String("fleet-out", "", "with -exp fleet-*: also write the CE event log to this file (compact format)")
		outFmt   = fs.String("format", "table", "output format: table, csv, or json")
		outDir   = fs.String("out", "", "also write each run's canonical JSON report to DIR/<id>.json")
		diffPath = fs.String("diff", "", "re-run the experiment saved in this JSON report and diff against it (non-zero exit on drift)")
		tolAbs   = fs.Float64("tol-abs", 0, "absolute numeric tolerance for -diff")
		tolRel   = fs.Float64("tol-rel", 0, "relative numeric tolerance for -diff")
		version  = fs.String("report-version", "", "build identifier recorded in report provenance")
		nworkers = fs.Int("parallel", defaults.Workers, "worker count for experiment sweeps (results are identical for any value)")
		replay   = fs.String("replay", "", "replay a trace file (tracegen output, v1 or compact) through the MEMCON engine and print its report")
		metrics  = fs.String("metrics", "", `write aggregated run metrics to this file ("-" for stdout)`)
		mformat  = fs.String("metrics-format", "json", "metrics output format: json, prom, or table")
		pprofOn  = fs.String("pprof", "", "serve net/http/pprof on this address while running (e.g. localhost:6060)")
		traceOut = fs.String("trace", "", "write a runtime execution trace to this file (inspect with go tool trace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *nworkers < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *nworkers)
	}
	if *fleetN < 0 {
		return fmt.Errorf("-fleet must be non-negative, got %d", *fleetN)
	}
	if *fleetOut != "" && *exp == "" {
		return fmt.Errorf("-fleet-out requires -exp (one experiment, one log)")
	}
	switch *outFmt {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown -format %q (want table, csv, or json)", *outFmt)
	}
	format, err := obs.ParseFormat(*mformat)
	if err != nil {
		return err
	}
	if *pprofOn != "" {
		bound, stopPprof, err := obs.StartPprof(*pprofOn)
		if err != nil {
			return err
		}
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "memconsim: pprof at http://%s/debug/pprof/\n", bound)
	}
	if *traceOut != "" {
		stopTrace, err := obs.StartTrace(*traceOut)
		if err != nil {
			return err
		}
		defer stopTrace() //nolint:errcheck // flush error surfaced via the file below
	}

	// The bare policy names compose with their parameter flags; a full
	// spec ("para:0.01") passes through untouched and Normalize
	// canonicalizes either spelling.
	disturbSpec := *disturb
	switch disturbSpec {
	case "para":
		disturbSpec = fmt.Sprintf("para:%g", *paraP)
	case "prac":
		disturbSpec = fmt.Sprintf("prac:%d", *pracN)
	}

	// The flags assemble a canonical experiments.Request. Fields are
	// literal — the -seed default is 42 at the flag layer, so an
	// explicit -seed 0 arrives as seed 0 with no "was it set?"
	// bookkeeping (the old Options.SeedSet special-casing).
	req := experiments.Request{
		Experiment: *exp, Seed: *seed, Scale: *scale,
		SimTimeNs: *simtime, Mixes: *mixes, Fleet: *fleetN,
		Mapping: *mapping, Disturb: disturbSpec, Version: *version,
	}
	rt := experiments.Runtime{Workers: *nworkers}

	// -metrics attaches the aggregating observer plus the volatile
	// wall-clock collectors (phase timer, pool utilization). Only the
	// latter two vary across runs; the json/prom documents exclude them.
	var reg *obs.Registry
	var phases *obs.PhaseTimer
	var pool *parallel.PoolStats
	if *metrics != "" {
		reg = obs.NewRegistry()
		phases = obs.NewPhaseTimer(nil)
		pool = parallel.NewPoolStats()
		rt.Observer = obs.NewMetrics(reg)
		rt.Phases = phases
		ctx = parallel.ContextWithStats(ctx, pool)
	}

	runErr := func() error {
		switch {
		case *list:
			for _, id := range experiments.IDs() {
				desc, err := experiments.Describe(id)
				if err != nil {
					return fmt.Errorf("describing %s: %w", id, err)
				}
				fmt.Fprintf(out, "%-10s %s\n", id, desc)
			}
			return nil
		case *diffPath != "":
			return runDiff(ctx, out, *diffPath, req, rt, explicit, report.Tolerance{Abs: *tolAbs, Rel: *tolRel})
		case *all:
			return runAll(ctx, out, req, rt, *outFmt, *outDir)
		case *exp != "":
			return runOne(ctx, out, req, rt, *outFmt, *outDir, *fleetOut)
		case *replay != "":
			return runReplay(ctx, out, *replay)
		default:
			fs.Usage()
			return fmt.Errorf("one of -list, -exp, -all, -diff, or -replay is required")
		}
	}()
	if runErr != nil {
		return runErr
	}
	if reg != nil {
		phases.ExportTo(reg)
		pool.ExportTo(reg)
		return writeMetrics(*metrics, out, reg, format)
	}
	return nil
}

// runReplay replays a trace file through the MEMCON engine under the
// default configuration and prints the deterministic report summary.
// Compact (v2) files replay through trace.Stream without materializing
// the event slice — O(pages) memory at I/O speed; v1 files are
// materialized. Both paths print the identical summary for the same
// logical trace.
func runReplay(ctx context.Context, out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	format, err := trace.DetectFormat(br)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	var name string
	var rep core.Report
	switch format {
	case trace.FormatCompact:
		s, err := trace.NewStream(br)
		if err != nil {
			return err
		}
		name = s.Name()
		if rep, err = core.RunSource(ctx, s, cfg); err != nil {
			return err
		}
	case trace.FormatV1:
		tr, err := trace.Read(br)
		if err != nil {
			return err
		}
		name = tr.Name
		if rep, err = core.RunContext(ctx, tr, cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%s: not a trace file (unknown magic)", path)
	}
	fmt.Fprintf(out, "trace %s: %d writes over %.2f s, %d pages\n",
		name, rep.Pril.Writes, float64(rep.Duration)/float64(trace.Second), rep.Pages)
	fmt.Fprintf(out, "  refresh reduction   %.4f (upper bound %.4f)\n",
		rep.RefreshReduction(), rep.UpperBoundReduction())
	fmt.Fprintf(out, "  lo-ref coverage     %.4f\n", rep.LoRefCoverage())
	fmt.Fprintf(out, "  tests               started %d, completed %d, aborted %d\n",
		rep.TestsStarted, rep.TestsCompleted, rep.TestsAborted)
	fmt.Fprintf(out, "  predictions         %d (correct %d, mispredicted %d)\n",
		rep.Pril.Predictions, rep.CorrectTests, rep.MispredictedTests)
	return nil
}

// writeMetrics renders the registry to path ("-" selects the CLI
// output stream).
func writeMetrics(path string, out io.Writer, reg *obs.Registry, format obs.Format) error {
	if path == "-" {
		return reg.Write(out, format)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics file: %w", err)
	}
	if err := reg.Write(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runAll executes every experiment. The experiments themselves run
// concurrently (each rendered to its own buffer) and the reports are
// printed in registry order, so the output matches a serial -all run
// byte for byte. Workers inside each experiment are left at 1: the
// -parallel budget is spent across experiments here, not within them.
func runAll(ctx context.Context, out io.Writer, req experiments.Request, rt experiments.Runtime, format, outDir string) error {
	ids := experiments.IDs()
	inner := rt
	inner.Workers = 1
	reports, err := parallel.Map(ctx, len(ids), rt.Workers, func(i int) (string, error) {
		var b strings.Builder
		r := req
		r.Experiment = ids[i]
		if err := runOne(ctx, &b, r, inner, format, outDir, ""); err != nil {
			return "", err
		}
		return b.String(), nil
	})
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Fprint(out, r)
	}
	return nil
}

func runOne(ctx context.Context, out io.Writer, req experiments.Request, rt experiments.Runtime, format, outDir, fleetOut string) error {
	id := req.Experiment
	res, err := experiments.RunRequest(ctx, req, rt)
	if err != nil {
		return fmt.Errorf("running %s: %w", id, err)
	}
	rep := res.Report()
	if outDir != "" {
		if err := writeReport(outDir, id, rep); err != nil {
			return err
		}
	}
	if fleetOut != "" {
		if err := writeCELog(fleetOut, id, res); err != nil {
			return err
		}
	}
	switch format {
	case "csv":
		text, err := rep.CSV()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprint(out, text)
	case "json":
		if err := rep.Encode(out); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	default:
		fmt.Fprintf(out, "==== %s ====\n%s\n", id, rep.Text())
	}
	return nil
}

// writeCELog captures a fleet run's CE event log in the compact
// streaming format. Only fleet results implement CELogWriter; asking
// any other experiment for a log is a usage error, not a silent no-op.
func writeCELog(path, id string, res experiments.Result) error {
	lw, ok := res.(experiments.CELogWriter)
	if !ok {
		return fmt.Errorf("experiment %s produces no CE event log (-fleet-out wants fleet-ce or fleet-risk)", id)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating CE log file: %w", err)
	}
	bw := bufio.NewWriter(f)
	err = lw.WriteCELog(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeReport stores one experiment's canonical JSON document under dir.
// MkdirAll is idempotent, so concurrent -all workers may race through it
// safely.
func writeReport(dir, id string, rep *report.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := rep.MarshalCanonical()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".json"), b, 0o644)
}

// runDiff re-runs the experiment recorded in a saved report and compares
// the fresh numbers against it. The saved provenance is round-tripped
// through experiments.Request (RequestFromProvenance → Normalize →
// RunRequest), so every input the report records — including any
// provenance field added after this code was written — flows into the
// re-run wholesale instead of being rebuilt field by field; a flag given
// explicitly on the command line still overrides its saved value, so a
// bare `-diff FILE` always re-runs apples-to-apples.
func runDiff(ctx context.Context, out io.Writer, path string, flags experiments.Request, rt experiments.Runtime, explicit map[string]bool, tol report.Tolerance) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	saved, err := report.Decode(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if saved.Prov.Experiment == "" {
		return fmt.Errorf("%s: report carries no experiment id", path)
	}
	req := experiments.RequestFromProvenance(saved.Prov)
	for flag, apply := range map[string]func(){
		"seed":    func() { req.Seed = flags.Seed },
		"scale":   func() { req.Scale = flags.Scale },
		"simtime": func() { req.SimTimeNs = flags.SimTimeNs },
		"mixes":   func() { req.Mixes = flags.Mixes },
		"fleet":   func() { req.Fleet = flags.Fleet },
		"mapping": func() { req.Mapping = flags.Mapping },
		// -disturb carries the spec already composed with -para-p /
		// -prac-threshold, so one entry covers all three flags.
		"disturb":        func() { req.Disturb = flags.Disturb },
		"report-version": func() { req.Version = flags.Version },
	} {
		if explicit[flag] {
			apply()
		}
	}
	if err := req.Normalize(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := experiments.RunRequest(ctx, req, rt)
	if err != nil {
		return fmt.Errorf("re-running %s: %w", req.Experiment, err)
	}
	d := report.Diff(saved, res.Report(), tol)
	fmt.Fprint(out, d.String())
	if !d.Clean() {
		return fmt.Errorf("report %s drifted from %s (%d difference(s))", req.Experiment, path, len(d.Entries))
	}
	return nil
}
