package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memcon/internal/workload"
)

// writeReplayTraces generates one small workload trace and writes it
// in both on-disk formats, returning the two paths.
func writeReplayTraces(t *testing.T) (v1Path, compactPath string) {
	t.Helper()
	spec, err := workload.AppByName("BlurMotion")
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.Generate(7, 0.02)
	dir := t.TempDir()
	v1Path = filepath.Join(dir, "v1.trace")
	compactPath = filepath.Join(dir, "v2.trace")
	for path, write := range map[string]func(io.Writer) error{
		v1Path:      tr.Write,
		compactPath: tr.WriteCompact,
	} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return v1Path, compactPath
}

// TestReplayFormatsAgree pins the streaming path against the
// materializing one end to end: replaying the same logical trace from
// a v1 file and a compact file must print byte-identical reports.
func TestReplayFormatsAgree(t *testing.T) {
	v1Path, compactPath := writeReplayTraces(t)
	var v1Out, v2Out strings.Builder
	if err := run([]string{"-replay", v1Path}, &v1Out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-replay", compactPath}, &v2Out); err != nil {
		t.Fatal(err)
	}
	if v1Out.String() != v2Out.String() {
		t.Fatalf("replay reports differ between formats:\n--- v1 ---\n%s--- compact ---\n%s",
			v1Out.String(), v2Out.String())
	}
	for _, want := range []string{"BlurMotion", "refresh reduction", "lo-ref coverage", "predictions"} {
		if !strings.Contains(v1Out.String(), want) {
			t.Errorf("replay report missing %q:\n%s", want, v1Out.String())
		}
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("this is not a trace file"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-replay", path}, &out); err == nil {
		t.Error("garbage file accepted by -replay")
	}
	if err := run([]string{"-replay", filepath.Join(dir, "missing")}, &out); err == nil {
		t.Error("missing file accepted by -replay")
	}
}

// TestReplayTruncatedCompact checks the positioned decode error
// reaches the CLI user instead of a silent short report.
func TestReplayTruncatedCompact(t *testing.T) {
	_, compactPath := writeReplayTraces(t)
	raw, err := os.ReadFile(compactPath)
	if err != nil {
		t.Fatal(err)
	}
	truncPath := compactPath + ".trunc"
	if err := os.WriteFile(truncPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = run([]string{"-replay", truncPath}, &out)
	if err == nil {
		t.Fatal("truncated compact trace accepted")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error %q does not carry the decode position", err)
	}
}
