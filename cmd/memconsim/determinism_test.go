package main

import (
	"strings"
	"testing"
)

// The -parallel contract: output is byte-identical for any worker
// count. These tests pin that for a sweep-heavy figure (fig14 fans out
// over all 12 workloads), a performance experiment (table3 fans out
// over mixes), a pure-computation table (fig6), and the whole -all
// pipeline, comparing -parallel 1 against 4 and 8 workers.

// runString runs the CLI and returns its full output.
func runString(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if out.Len() == 0 {
		t.Fatalf("run(%v): empty output", args)
	}
	return out.String()
}

// assertParallelInvariant runs the same experiment at worker counts
// 1, 4 and 8 and requires byte-identical output.
func assertParallelInvariant(t *testing.T, args ...string) {
	t.Helper()
	want := runString(t, append(args, "-parallel", "1")...)
	for _, n := range []string{"4", "8"} {
		got := runString(t, append(args, "-parallel", n)...)
		if got != want {
			t.Errorf("output differs between -parallel 1 and -parallel %s\n--- parallel 1 ---\n%s\n--- parallel %s ---\n%s",
				n, want, n, got)
		}
	}
}

func TestParallelInvariantFig15(t *testing.T) {
	assertParallelInvariant(t, "-exp", "fig15", "-scale", "0.04", "-simtime", "200000", "-mixes", "3")
}

func TestParallelInvariantTable3(t *testing.T) {
	assertParallelInvariant(t, "-exp", "table3", "-scale", "0.04", "-simtime", "200000", "-mixes", "3")
}

func TestParallelInvariantFig6(t *testing.T) {
	assertParallelInvariant(t, "-exp", "fig6")
}

func TestParallelInvariantFig14(t *testing.T) {
	assertParallelInvariant(t, "-exp", "fig14", "-scale", "0.04")
}

func TestParallelInvariantAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full -all sweep in -short mode")
	}
	assertParallelInvariant(t, "-all", "-scale", "0.05", "-simtime", "200000", "-mixes", "3")
}

// TestParallelInvariantMappings extends the -parallel contract across
// the vendor address mappings on a chip-level experiment: each mapping
// must be internally deterministic for any worker count, and distinct
// mappings must produce distinct reports (the selector is live, not
// cosmetic).
func TestParallelInvariantMappings(t *testing.T) {
	outputs := make(map[string]string)
	for _, m := range []string{"default", "gray", "linear", "mirror"} {
		assertParallelInvariant(t, "-exp", "fig3", "-scale", "0.04", "-mapping", m)
		outputs[m] = runString(t, "-exp", "fig3", "-scale", "0.04", "-mapping", m, "-parallel", "4")
	}
	if outputs["default"] == outputs["gray"] || outputs["default"] == outputs["mirror"] ||
		outputs["gray"] == outputs["linear"] {
		t.Error("distinct mappings produced identical fig3 reports")
	}
}

// TestMappingDefaultSpellings pins that -mapping default and the
// absent flag are the same request: byte-identical output (the
// Normalize canonicalization, observed end to end).
func TestMappingDefaultSpellings(t *testing.T) {
	bare := runString(t, "-exp", "fig3", "-scale", "0.04", "-parallel", "4")
	def := runString(t, "-exp", "fig3", "-scale", "0.04", "-mapping", "default", "-parallel", "4")
	if bare != def {
		t.Error("-mapping default differs from the absent flag")
	}
}

func TestUnknownMappingRejected(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "fig3", "-scale", "0.04", "-mapping", "zigzag"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown address mapping") {
		t.Errorf("-mapping zigzag: err = %v, want unknown-mapping error", err)
	}
}

// TestRepeatedRunsIdentical guards against nondeterminism that does not
// come from scheduling at all (map iteration order leaking into float
// accumulation): two runs of the same process must agree byte for byte.
func TestRepeatedRunsIdentical(t *testing.T) {
	args := []string{"-exp", "fig9", "-scale", "0.04", "-parallel", "4"}
	a := runString(t, args...)
	b := runString(t, args...)
	if a != b {
		t.Errorf("two identical invocations disagree:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
