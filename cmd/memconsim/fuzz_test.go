package main

import (
	"io"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzMemconsimArgs feeds arbitrary argument vectors to the CLI entry
// point. Invalid input must come back as an error, never a panic; the
// flag set may also accept the input, in which case the experiment
// runs. Overrides appended after the fuzzed args keep accepted runs
// cheap (flag.Parse takes the last occurrence of a repeated flag).
func FuzzMemconsimArgs(f *testing.F) {
	f.Add("-list")
	f.Add("-exp fig6")
	f.Add("-exp table1 -format csv")
	f.Add("-exp fig99")
	f.Add("-all -format csv")
	f.Add("-scale -1")
	f.Add("-exp fig6 -parallel 0")
	f.Add("-exp fig6 -parallel -3")
	f.Add("-seed notanumber")
	f.Add("--")
	f.Add("-exp\x00fig6")
	f.Fuzz(func(t *testing.T, raw string) {
		if len(raw) > 256 || !utf8.ValidString(raw) {
			t.Skip()
		}
		args := strings.Fields(raw)
		for _, a := range args {
			// A fuzzed "-exp fig15 -mixes 9999999" must not turn into a
			// multi-hour simulation; reject inputs that try to re-raise
			// the cost knobs after our overrides would be bypassed.
			if len(a) > 64 {
				t.Skip()
			}
		}
		args = append(args,
			"-scale", "0.02", "-simtime", "50000", "-mixes", "1", "-parallel", "2")
		// Any outcome but a panic is acceptable.
		_ = run(args, io.Discard)
	})
}

// TestCSVUniversal pins that the typed-report refactor gave every
// experiment a CSV form — including the ids that used to reject CSV
// output with a "no CSV form" error (table1, minwi, fig3).
func TestCSVUniversal(t *testing.T) {
	for _, id := range []string{"fig6", "table1", "minwi", "fig3"} {
		var out strings.Builder
		if err := run([]string{"-exp", id, "-format", "csv", "-scale", "0.04"}, &out); err != nil {
			t.Errorf("%s -format csv: %v", id, err)
			continue
		}
		header := strings.SplitN(out.String(), "\n", 2)[0]
		if header == "" {
			t.Errorf("%s -format csv: empty output", id)
		}
	}
}
