package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memcon/internal/report"
)

// goldenArgs are the small-scale settings the committed artifacts
// (testdata/golden_all.txt and ../../testdata/reports/) were generated
// with.
var goldenArgs = []string{"-scale", "0.05", "-simtime", "200000", "-mixes", "3"}

// TestGoldenAllOutput pins the full -all text rendering byte for byte
// against the output captured before the typed-report refactor: the
// generic renderer must reproduce every hand-rolled table exactly.
func TestGoldenAllOutput(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_all.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got := runString(t, append([]string{"-all", "-parallel", "4"}, goldenArgs...)...)
	if got != string(want) {
		t.Errorf("-all output drifted from testdata/golden_all.txt (%d vs %d bytes); regenerate with `make reports` only for intended changes", len(got), len(want))
	}
}

// TestJSONFormat pins the -format json path: the document decodes and
// carries the experiment's provenance.
func TestJSONFormat(t *testing.T) {
	got := runString(t, "-exp", "minwi", "-format", "json")
	rep, err := report.DecodeBytes([]byte(got))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prov.Experiment != "minwi" {
		t.Errorf("provenance experiment = %q", rep.Prov.Experiment)
	}
}

// TestOutAndDiff exercises the save/verify loop: -out writes the
// canonical document, a bare -diff against it re-runs with the saved
// inputs and comes back clean, and injected numeric drift fails with a
// non-zero exit unless a tolerance absorbs it.
func TestOutAndDiff(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(append([]string{"-exp", "fig4", "-out", dir}, goldenArgs...), &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fig4.json")

	// Clean diff: note the inputs come from the saved provenance, not
	// from flags.
	out.Reset()
	if err := run([]string{"-diff", path}, &out); err != nil {
		t.Fatalf("clean diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no differences") {
		t.Errorf("clean diff output: %q", out.String())
	}

	// Inject numeric drift into the first float cell.
	rep := decodeFile(t, path)
	drifted := false
search:
	for _, tab := range rep.Tables() {
		for ri := range tab.Rows {
			for ci := range tab.Rows[ri].Cells {
				c := &tab.Rows[ri].Cells[ci]
				if c.Kind == report.KindFloat {
					c.Float += 0.001
					drifted = true
					break search
				}
			}
		}
	}
	if !drifted {
		t.Fatal("report has no float cells to drift")
	}
	bad := filepath.Join(dir, "drifted.json")
	encodeFile(t, bad, rep)
	out.Reset()
	if err := run([]string{"-diff", bad}, &out); err == nil {
		t.Errorf("injected drift not detected:\n%s", out.String())
	} else if !strings.Contains(err.Error(), "drifted") {
		t.Errorf("drift error = %v", err)
	}

	// A generous tolerance absorbs the float drift.
	out.Reset()
	if err := run([]string{"-diff", bad, "-tol-abs", "0.01"}, &out); err != nil {
		t.Errorf("tolerance did not absorb drift: %v\n%s", err, out.String())
	}
}

// TestDiffRoundTripsProvenance is the default-drift regression for the
// -diff path: the re-run is built by round-tripping the SAVED provenance
// through experiments.Request, so inputs that are easy to drop when
// rebuilding options field by field — an explicit zero seed, the
// version string — must survive a bare `-diff FILE` untouched.
func TestDiffRoundTripsProvenance(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	args := append([]string{"-exp", "fig4", "-seed", "0", "-report-version", "rt-v9", "-out", dir}, goldenArgs...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fig4.json")
	saved := decodeFile(t, path)
	if saved.Prov.Seed != 0 || saved.Prov.Version != "rt-v9" {
		t.Fatalf("saved provenance = %+v", saved.Prov)
	}

	// A bare -diff re-runs with seed 0 and version "rt-v9" from the
	// saved provenance: clean, and no version-mismatch note either.
	out.Reset()
	if err := run([]string{"-diff", path}, &out); err != nil {
		t.Fatalf("round-trip diff failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "version differs") {
		t.Errorf("saved version was not round-tripped:\n%s", out.String())
	}

	// An explicit flag still overrides its saved value: a different seed
	// re-runs with different randomness and must drift.
	out.Reset()
	if err := run([]string{"-diff", path, "-seed", "1"}, &out); err == nil {
		t.Errorf("explicit -seed 1 against a seed-0 report diffed clean:\n%s", out.String())
	}
}

// TestCommittedReportsDiffClean regenerates every experiment from its
// committed reference document and requires a clean diff — the report
// regression gate CI runs.
func TestCommittedReportsDiffClean(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "reports")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 20 {
		t.Fatalf("only %d committed reports in %s", len(entries), dir)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		t.Run(strings.TrimSuffix(name, ".json"), func(t *testing.T) {
			t.Parallel()
			var out strings.Builder
			if err := run([]string{"-diff", filepath.Join(dir, name)}, &out); err != nil {
				t.Errorf("%v\n%s", err, out.String())
			}
		})
	}
}

func decodeFile(t *testing.T, path string) *report.Report {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report.DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func encodeFile(t *testing.T, path string, rep *report.Report) {
	t.Helper()
	b, err := rep.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
