package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The -metrics contract extends the -parallel invariant to the metrics
// document: the json and prom renderings contain only deterministic
// aggregates (commutative counters and integer-domain histograms) and
// must be byte-identical for any worker count.

// runMetrics runs the CLI with -metrics pointed at a temp file and
// returns the file contents.
func runMetrics(t *testing.T, format string, args ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics."+format)
	full := append(args, "-metrics", path, "-metrics-format", format)
	var out strings.Builder
	if err := run(full, &out); err != nil {
		t.Fatalf("run(%v): %v", full, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics file: %v", err)
	}
	if len(data) == 0 {
		t.Fatalf("run(%v): empty metrics file", full)
	}
	return string(data)
}

func assertMetricsParallelInvariant(t *testing.T, format string, args ...string) {
	t.Helper()
	want := runMetrics(t, format, append(args, "-parallel", "1")...)
	for _, n := range []string{"4", "8"} {
		got := runMetrics(t, format, append(args, "-parallel", n)...)
		if got != want {
			t.Errorf("%s metrics differ between -parallel 1 and -parallel %s\n--- parallel 1 ---\n%s\n--- parallel %s ---\n%s",
				format, n, want, n, got)
		}
	}
}

func TestMetricsParallelInvariantJSON(t *testing.T) {
	assertMetricsParallelInvariant(t, "json", "-exp", "fig14", "-scale", "0.04")
}

func TestMetricsParallelInvariantProm(t *testing.T) {
	assertMetricsParallelInvariant(t, "prom", "-exp", "fig14", "-scale", "0.04")
}

func TestMetricsParallelInvariantAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full -all sweep in -short mode")
	}
	assertMetricsParallelInvariant(t, "json", "-all", "-scale", "0.05", "-simtime", "200000", "-mixes", "3")
}

// TestMetricsParallelInvariantDisturb pins the activation/mitigation
// counter kinds of the read-disturb co-simulation: both ids must emit
// byte-identical metrics documents at -parallel 1/4/8, like every
// other experiment.
func TestMetricsParallelInvariantDisturb(t *testing.T) {
	args := []string{"-scale", "0.05", "-simtime", "200000", "-mixes", "3"}
	assertMetricsParallelInvariant(t, "json", append([]string{"-exp", "disturb-exposure"}, args...)...)
	assertMetricsParallelInvariant(t, "prom", append([]string{"-exp", "disturb-mitigation", "-disturb", "para:0.01"}, args...)...)
}

// TestMetricsDisturbCounters checks the new activation/mitigation
// counters flow from the controller through obs into the document.
func TestMetricsDisturbCounters(t *testing.T) {
	out := runMetrics(t, "json", "-exp", "disturb-exposure", "-scale", "0.05",
		"-simtime", "200000", "-mixes", "3", "-parallel", "4")
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, out)
	}
	for _, name := range []string{
		"memcon_row_activations_total",
		"memcon_test_activations_total",
		"memcon_disturb_rows_total",
		"memcon_disturb_cells_total",
	} {
		if doc.Counters[name] == 0 {
			t.Errorf("counter %s missing or zero:\n%s", name, out)
		}
	}

	out = runMetrics(t, "json", "-exp", "disturb-mitigation", "-disturb", "prac:1024",
		"-scale", "0.05", "-simtime", "200000", "-mixes", "3", "-parallel", "4")
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, out)
	}
	if doc.Counters["memcon_mitigation_ops_total"] == 0 {
		t.Errorf("no mitigation ops counted:\n%s", out)
	}
}

// TestMetricsJSONDocument checks the document is valid JSON, counts
// real engine activity, and excludes the volatile wall-clock gauges.
func TestMetricsJSONDocument(t *testing.T) {
	out := runMetrics(t, "json", "-exp", "fig14", "-scale", "0.04", "-parallel", "4")
	var doc struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]float64         `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, out)
	}
	if doc.Counters["memcon_engine_runs_total"] == 0 {
		t.Errorf("no engine runs counted:\n%s", out)
	}
	if doc.Counters["memcon_writes_total"] == 0 {
		t.Errorf("no writes counted:\n%s", out)
	}
	if doc.Counters["memcon_tests_queued_total"] == 0 {
		t.Errorf("no tests counted:\n%s", out)
	}
	if _, ok := doc.Histograms["memcon_write_interval_us"]; !ok {
		t.Errorf("write-interval histogram missing:\n%s", out)
	}
	for name := range doc.Gauges {
		if strings.Contains(name, "wall_ns") || strings.HasPrefix(name, "phase_") || strings.HasPrefix(name, "pool_") {
			t.Errorf("volatile gauge %s leaked into the JSON document", name)
		}
	}
}

// TestMetricsPromExposition checks the Prometheus text format is
// structurally valid: HELP/TYPE headers, "name value" samples, and
// cumulative histogram buckets ending in +Inf.
func TestMetricsPromExposition(t *testing.T) {
	out := runMetrics(t, "prom", "-exp", "fig14", "-scale", "0.04", "-parallel", "4")
	if !strings.Contains(out, "# TYPE memcon_writes_total counter") {
		t.Errorf("missing TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `memcon_write_interval_us_bucket{le="+Inf"}`) {
		t.Errorf("missing +Inf histogram bucket:\n%s", out)
	}
	if strings.Contains(out, "pool_worker") || strings.Contains(out, "phase_") {
		t.Errorf("volatile gauges leaked into Prometheus exposition:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestMetricsToStdout checks "-metrics -" appends the document to the
// normal output stream.
func TestMetricsToStdout(t *testing.T) {
	out := runString(t, "-exp", "fig6", "-metrics", "-", "-metrics-format", "prom")
	if !strings.Contains(out, "==== fig6 ====") || !strings.Contains(out, "memcon_engine_runs_total") {
		t.Errorf("stdout metrics missing report or document:\n%s", out)
	}
}

func TestMetricsBadFormatRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig6", "-metrics", "-", "-metrics-format", "yaml"}, &out); err == nil {
		t.Errorf("unknown -metrics-format accepted")
	}
}
