package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig14", "fig6", "table3", "minwi", "vrt", "motiv"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("listing missing %q", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "minwi"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1068 ns") {
		t.Errorf("appendix output missing costs:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNoArguments(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("empty invocation should error with usage")
	}
	if !strings.Contains(out.String(), "-exp") {
		t.Error("usage not printed")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunScaledExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig6", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "560 ms") {
		t.Errorf("fig6 output missing MinWriteInterval:\n%s", out.String())
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig6", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "time_ms,hiref_ns,memcon_ns") {
		t.Errorf("csv output wrong header:\n%s", out.String())
	}
}

// TestCSVAliasRemoved pins that the deprecated -csv alias (an alias for
// -format csv since the typed-report refactor) is gone: the flag is now
// rejected outright instead of being silently honoured.
func TestCSVAliasRemoved(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig6", "-csv"}, &out); err == nil {
		t.Error("removed -csv flag still accepted")
	}
	if err := run([]string{"-exp", "fig6", "-format", "bogus"}, &out); err == nil {
		t.Error("unknown -format accepted")
	}
}

// TestSeedZeroHonoured pins the literal-seed contract of the Request
// flag layer: -seed 0 must select seed 0, not silently fall back to the
// default seed 42.
func TestSeedZeroHonoured(t *testing.T) {
	var zero, def strings.Builder
	if err := run([]string{"-exp", "fig3", "-scale", "0.04", "-seed", "0"}, &zero); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig3", "-scale", "0.04"}, &def); err != nil {
		t.Fatal(err)
	}
	if zero.String() == def.String() {
		t.Error("-seed 0 produced the default-seed output; the zero seed was dropped")
	}
}
