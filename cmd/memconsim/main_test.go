package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig14", "fig6", "table3", "minwi", "vrt", "motiv"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("listing missing %q", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "minwi"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1068 ns") {
		t.Errorf("appendix output missing costs:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNoArguments(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("empty invocation should error with usage")
	}
	if !strings.Contains(out.String(), "-exp") {
		t.Error("usage not printed")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunScaledExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig6", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "560 ms") {
		t.Errorf("fig6 output missing MinWriteInterval:\n%s", out.String())
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig6", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "time_ms,hiref_ns,memcon_ns") {
		t.Errorf("csv output wrong header:\n%s", out.String())
	}
	// Experiments without a CSV form report a clear error.
	if err := run([]string{"-exp", "minwi", "-csv"}, &out); err == nil {
		t.Error("csv for non-series experiment accepted")
	}
}
