package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"memcon/internal/experiments"
	"memcon/internal/obs"
	"memcon/internal/servecache"
)

// progressHub aggregates one in-flight run's obs.Observer event stream
// into per-kind counters and broadcasts periodic JSON snapshots to SSE
// subscribers. Counting is lock-free (the engine hot loop emits events
// at high rate); only subscription management takes the mutex.
type progressHub struct {
	counts []int64 // indexed by obs.Kind, updated atomically

	mu   sync.Mutex
	subs map[chan []byte]struct{}
}

func newProgressHub() *progressHub {
	return &progressHub{
		counts: make([]int64, len(obs.Kinds())),
		subs:   make(map[chan []byte]struct{}),
	}
}

// OnEvent implements obs.Observer.
func (h *progressHub) OnEvent(e obs.Event) {
	if int(e.Kind) < len(h.counts) {
		atomic.AddInt64(&h.counts[e.Kind], 1)
	}
}

// subscribe registers a snapshot channel. Broadcasts that would block
// are dropped (a slow subscriber misses intermediate snapshots, never
// stalls the publisher).
func (h *progressHub) subscribe() chan []byte {
	ch := make(chan []byte, 16)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *progressHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// snapshot renders the counters as one JSON object with the event
// kinds in catalogue order, zero counts omitted:
// {"total":1234,"events":{"write":1000,"test_queued":234}}.
func (h *progressHub) snapshot() []byte {
	var b bytes.Buffer
	var total int64
	for i := range h.counts {
		total += atomic.LoadInt64(&h.counts[i])
	}
	fmt.Fprintf(&b, `{"total":%d,"events":{`, total)
	first := true
	for _, k := range obs.Kinds() {
		n := atomic.LoadInt64(&h.counts[k])
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%d", k.String(), n)
	}
	b.WriteString("}}")
	return b.Bytes()
}

// broadcast sends the current snapshot to every subscriber that has
// room for it.
func (h *progressHub) broadcast() {
	snap := h.snapshot()
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- snap:
		default:
		}
	}
	h.mu.Unlock()
}

// publish starts the snapshot ticker for a run in flight; the returned
// stop function halts it (emitting one final snapshot so subscribers
// see the end state).
func (h *progressHub) publish(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.broadcast()
			case <-done:
				h.broadcast()
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// hubSet reference-counts progress hubs per cache key so an SSE
// subscriber and the flight computing that key share one hub even
// though either side may arrive first.
type hubSet struct {
	mu   sync.Mutex
	hubs map[servecache.Key]*hubEntry
}

type hubEntry struct {
	hub  *progressHub
	refs int
}

func newHubSet() *hubSet {
	return &hubSet{hubs: make(map[servecache.Key]*hubEntry)}
}

// acquire returns the hub for k, creating it on first use; the release
// function drops the reference and removes the hub when nobody holds it.
func (s *hubSet) acquire(k servecache.Key) (*progressHub, func()) {
	s.mu.Lock()
	e, ok := s.hubs[k]
	if !ok {
		e = &hubEntry{hub: newProgressHub()}
		s.hubs[k] = e
	}
	e.refs++
	s.mu.Unlock()
	var once sync.Once
	return e.hub, func() {
		once.Do(func() {
			s.mu.Lock()
			e.refs--
			if e.refs == 0 && s.hubs[k] == e {
				delete(s.hubs, k)
			}
			s.mu.Unlock()
		})
	}
}

// streamExperiment answers an SSE request: progress snapshots of the
// run's event counters, then the outcome and the canonical report.
// A cache hit skips straight to the result.
func (s *Server) streamExperiment(w http.ResponseWriter, r *http.Request, req experiments.Request, key servecache.Key, reqJSON []byte) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	hub, release := s.hubs.acquire(key)
	defer release()
	sub := hub.subscribe()
	defer hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Memcond-Key", key.String())
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	type doResult struct {
		entry   *servecache.Entry
		outcome servecache.Outcome
		err     error
	}
	ch := make(chan doResult, 1)
	go func() {
		entry, outcome, err := s.cache.Do(r.Context(), key, reqJSON, s.computeFor(req, key))
		ch <- doResult{entry, outcome, err}
	}()

	for {
		select {
		case snap := <-sub:
			writeSSE(w, "progress", snap)
			flusher.Flush()
		case res := <-ch:
			s.countOutcome(res.outcome)
			if res.err != nil {
				s.errorsTotal.Inc()
				writeSSE(w, "error", []byte(fmt.Sprintf(`{"error":%q}`, res.err.Error())))
			} else {
				writeSSE(w, "outcome", []byte(fmt.Sprintf(`{"cache":%q,"key":%q}`, res.outcome.String(), key.String())))
				writeSSE(w, "result", res.entry.Data)
			}
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one server-sent event. Multi-line payloads (the
// canonical report JSON) become one data: field per line, which the
// SSE wire format reassembles with newlines on the client.
func writeSSE(w io.Writer, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\n", event)
	for _, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	io.WriteString(w, "\n")
}
