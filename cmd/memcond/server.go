package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"memcon/internal/experiments"
	"memcon/internal/obs"
	"memcon/internal/report"
	"memcon/internal/servecache"
)

// Config tunes the daemon.
type Config struct {
	// Workers bounds concurrently running experiments (the worker
	// pool); values below 1 select 4.
	Workers int
	// Queue bounds requests waiting for a worker slot beyond the ones
	// running; a request arriving past the bound is answered 503.
	// Values below 1 select 64.
	Queue int
	// Timeout is the per-request run budget; an experiment exceeding it
	// is cancelled and answered 504. Zero selects 2 minutes.
	Timeout time.Duration
	// CacheEntries bounds the result cache's memory tier (LRU); zero
	// selects 1024.
	CacheEntries int
	// CacheShards is the memory tier's key-prefix shard count; zero
	// selects 16.
	CacheShards int
	// CacheMemBytes bounds the memory tier's payload bytes; zero
	// selects unbounded.
	CacheMemBytes int64
	// CacheDir, when set, enables the persistent disk tier: every
	// computed result is written through to one content-addressed file
	// under this directory, and a restarted daemon serves its prior
	// corpus from there without re-running anything.
	CacheDir string
	// CacheDiskBytes bounds the disk tier; zero selects unbounded.
	CacheDiskBytes int64
	// Version is the build identifier stamped into report provenance
	// when the client does not supply one.
	Version string
	// ProgressInterval is the SSE progress snapshot cadence; zero
	// selects 250ms.
	ProgressInterval time.Duration
	// MaxScale caps the scale a request may ask for (a serving-side
	// cost guard); zero means no cap.
	MaxScale float64
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Queue < 1 {
		c.Queue = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 1024
	}
	if c.CacheShards < 1 {
		c.CacheShards = 16
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 250 * time.Millisecond
	}
	return c
}

// errBusy is returned when the wait queue is full; mapped to 503.
var errBusy = errors.New("memcond: worker queue full")

// Server is the experiment-serving daemon: the 28-id experiment
// registry behind an HTTP/JSON API with a content-addressed result
// cache, a bounded worker pool, SSE progress, and Prometheus metrics.
type Server struct {
	cfg      Config
	cache    *servecache.Cache
	store    *servecache.Store // nil without -cache-dir
	reg      *obs.Registry
	engineMx *obs.Metrics // aggregates engine lifecycle events across all runs
	sem      chan struct{}
	queued   atomic.Int64
	draining atomic.Bool
	ready    atomic.Bool // flipped by WarmBoot; gates /readyz
	hubs     *hubSet

	// run executes one normalized request and returns the canonical
	// report JSON. Tests replace it to make timing-sensitive paths
	// (cancellation, drain, singleflight) deterministic.
	run func(ctx context.Context, req experiments.Request, rt experiments.Runtime) ([]byte, error)

	requests     *obs.Counter
	cacheHits    *obs.Counter
	cacheDisk    *obs.Counter
	cacheMisses  *obs.Counter
	cacheShared  *obs.Counter
	notModified  *obs.Counter
	gzipServed   *obs.Counter
	errorsTotal  *obs.Counter
	busyTotal    *obs.Counter
	timeouts     *obs.Counter
	revalidates  *obs.Counter
	revalDrifted *obs.Counter
	inflight     *obs.Gauge
	latency      *obs.Histogram

	// Scrape-time gauges filled from cache/store snapshots.
	memEntries   *obs.Gauge
	memBytes     *obs.Gauge
	diskEntries  *obs.Gauge
	diskBytes    *obs.Gauge
	diskCorrupt  *obs.Gauge
	shardReqs    []*obs.Gauge
	shardEntries []*obs.Gauge
}

// NewServer builds the daemon with the given configuration. When
// cfg.CacheDir is set the persistent disk tier is opened (its warm-boot
// index scan runs in WarmBoot, which the caller must invoke).
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var store *servecache.Store
	if cfg.CacheDir != "" {
		var err error
		store, err = servecache.OpenStore(cfg.CacheDir, cfg.CacheDiskBytes)
		if err != nil {
			return nil, err
		}
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg: cfg,
		cache: servecache.NewWithOptions(servecache.Options{
			Shards:     cfg.CacheShards,
			MaxEntries: cfg.CacheEntries,
			MaxBytes:   cfg.CacheMemBytes,
			Store:      store,
		}),
		store:    store,
		reg:      reg,
		engineMx: obs.NewMetrics(reg),
		sem:      make(chan struct{}, cfg.Workers),
		hubs:     newHubSet(),

		requests:     reg.Counter("memcond_requests_total", "experiment requests received"),
		cacheHits:    reg.Counter("memcond_cache_hits_total", "requests served from the memory tier"),
		cacheDisk:    reg.Counter("memcond_cache_disk_hits_total", "requests served from the disk tier"),
		cacheMisses:  reg.Counter("memcond_cache_misses_total", "requests that ran an experiment"),
		cacheShared:  reg.Counter("memcond_cache_shared_total", "requests that joined an in-flight identical run"),
		notModified:  reg.Counter("memcond_not_modified_total", "requests answered 304 via If-None-Match"),
		gzipServed:   reg.Counter("memcond_gzip_total", "responses served from the precomputed gzip variant"),
		errorsTotal:  reg.Counter("memcond_errors_total", "requests answered with a non-2xx status"),
		busyTotal:    reg.Counter("memcond_busy_total", "requests rejected because the worker queue was full"),
		timeouts:     reg.Counter("memcond_timeouts_total", "runs cancelled by the per-request timeout"),
		revalidates:  reg.Counter("memcond_revalidate_total", "revalidation requests processed"),
		revalDrifted: reg.Counter("memcond_revalidate_drift_total", "revalidations that found drift"),
		inflight:     reg.Gauge("memcond_inflight_runs", "experiments currently executing", false),
		latency: reg.Histogram("memcond_request_ns",
			"request latency in nanoseconds (log2 buckets)", 4096, 32),

		memEntries:  reg.Gauge("memcond_cache_mem_entries", "memory-tier entries", false),
		memBytes:    reg.Gauge("memcond_cache_mem_bytes", "memory-tier payload bytes", false),
		diskEntries: reg.Gauge("memcond_cache_disk_entries", "disk-tier entries", false),
		diskBytes:   reg.Gauge("memcond_cache_disk_bytes", "disk-tier bytes", false),
		diskCorrupt: reg.Gauge("memcond_cache_disk_corrupt_dropped", "disk entries dropped after failing verification", false),
	}
	s.shardReqs = make([]*obs.Gauge, cfg.CacheShards)
	s.shardEntries = make([]*obs.Gauge, cfg.CacheShards)
	for i := range s.shardReqs {
		s.shardReqs[i] = reg.Gauge(fmt.Sprintf("memcond_cache_shard%d_requests", i),
			fmt.Sprintf("cache requests resolved by shard %d", i), false)
		s.shardEntries[i] = reg.Gauge(fmt.Sprintf("memcond_cache_shard%d_entries", i),
			fmt.Sprintf("memory-tier entries held by shard %d", i), false)
	}
	s.run = s.realRun
	return s, nil
}

// WarmBoot runs the disk tier's index scan (if any) and then marks the
// server ready; /readyz answers 503 until it completes, so a load
// balancer does not route to a daemon still indexing its corpus. It
// returns the number of persisted entries indexed. Serving is safe
// before WarmBoot — disk reads verify files directly — so main runs
// this concurrently with the listener.
func (s *Server) WarmBoot() (int, error) {
	n := 0
	var err error
	if s.store != nil {
		n, err = s.store.Scan()
	}
	s.ready.Store(true)
	return n, err
}

// realRun executes one experiment on the registry and renders its
// canonical report. rt.Observer already carries the progress and
// metrics observers.
func (s *Server) realRun(ctx context.Context, req experiments.Request, rt experiments.Runtime) ([]byte, error) {
	res, err := experiments.RunRequest(ctx, req, rt)
	if err != nil {
		return nil, err
	}
	return res.Report().MarshalCanonical()
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("POST /v1/revalidate", s.handleRevalidate)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// SetDraining flips the health endpoint to "draining"; main calls it
// when SIGTERM arrives, before http.Server.Shutdown stops accepting.
func (s *Server) SetDraining() { s.draining.Store(true) }

// acquire claims a worker slot, waiting in the bounded queue. It
// returns errBusy when the queue is full and the context error when
// the caller gives up first.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.Queue) {
		s.queued.Add(-1)
		s.busyTotal.Inc()
		return errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// decodeRequest reads a request body (possibly empty) onto the
// defaults for id: absent fields keep their defaults, present fields —
// including an explicit zero seed — win.
func (s *Server) decodeRequest(r *http.Request, id string) (experiments.Request, error) {
	req := experiments.DefaultRequest(id)
	req.Version = s.cfg.Version
	body, err := readBody(r)
	if err != nil {
		return req, err
	}
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("decoding request body: %w", err)
		}
	}
	if req.Experiment == "" {
		req.Experiment = id
	} else if req.Experiment != id {
		return req, fmt.Errorf("body experiment %q conflicts with URL id %q", req.Experiment, id)
	}
	if s.cfg.MaxScale > 0 && req.Scale > s.cfg.MaxScale {
		return req, fmt.Errorf("scale %v exceeds this server's cap %v", req.Scale, s.cfg.MaxScale)
	}
	return req, nil
}

// computeFor builds the singleflight computation for one normalized
// request: claim a pool slot, run under the per-request timeout with
// the progress hub and engine metrics attached, and render canonical
// JSON. The context it receives belongs to the flight (alive while any
// caller waits), not to a single HTTP request.
func (s *Server) computeFor(req experiments.Request, key servecache.Key) func(context.Context) ([]byte, error) {
	return func(fctx context.Context) ([]byte, error) {
		if err := s.acquire(fctx); err != nil {
			return nil, err
		}
		defer s.release()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		runCtx, cancel := context.WithTimeout(fctx, s.cfg.Timeout)
		defer cancel()

		hub, release := s.hubs.acquire(key)
		defer release()
		stopPublish := hub.publish(s.cfg.ProgressInterval)
		defer stopPublish()

		data, err := s.run(runCtx, req, experiments.Runtime{
			Observer: obs.Tee(s.engineMx, hub),
		})
		if err != nil && runCtx.Err() != nil && fctx.Err() == nil {
			// The deadline (not a caller) killed the run.
			s.timeouts.Inc()
			return nil, fmt.Errorf("experiment %s: %w", req.Experiment, context.DeadlineExceeded)
		}
		return data, err
	}
}

// handleExperiment serves POST /v1/experiments/{id}: resolve the
// request against the cache (singleflight on concurrent identical
// requests), running the experiment on the worker pool on a miss. With
// Accept: text/event-stream the response is an SSE stream of progress
// snapshots ending in the result.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Inc()
	id := r.PathValue("id")
	if _, err := experiments.Describe(id); err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	req, err := s.decodeRequest(r, id)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Normalize(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key := servecache.Key(req.CacheKey())
	reqJSON, err := req.MarshalCanonical()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}

	// Warm 304 fast path: the client already holds the bytes for this
	// key (ETag = cache key) and a tier has them resident — answer with
	// zero encoding, compression, or body work.
	if etagMatch(r.Header.Get("If-None-Match"), key) {
		if _, tier, ok := s.cache.Probe(key); ok {
			s.countOutcome(tier)
			s.writeNotModified(w, key, tier)
			s.latency.Observe(time.Since(start).Nanoseconds())
			return
		}
	}

	if wantsSSE(r) {
		s.streamExperiment(w, r, req, key, reqJSON)
		s.latency.Observe(time.Since(start).Nanoseconds())
		return
	}

	entry, outcome, err := s.cache.Do(r.Context(), key, reqJSON, s.computeFor(req, key))
	s.countOutcome(outcome)
	if err != nil {
		s.failRun(w, r, err)
		return
	}
	s.writeEntry(w, r, entry, outcome, key)
	s.latency.Observe(time.Since(start).Nanoseconds())
}

// etagMatch reports whether an If-None-Match header names the entity
// tag of key (a quoted cache-key hex, weak validators tolerated) or is
// the wildcard.
func etagMatch(inm string, key servecache.Key) bool {
	if inm == "" {
		return false
	}
	want := key.String()
	for _, part := range strings.Split(inm, ",") {
		tag := strings.TrimSpace(part)
		if tag == "*" {
			return true
		}
		tag = strings.TrimPrefix(tag, "W/")
		tag = strings.Trim(tag, `"`)
		if tag == want {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the client's Accept-Encoding admits the
// precomputed gzip variant.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(enc) != "gzip" {
			continue
		}
		if hasQ && strings.TrimSpace(q) == "q=0" {
			return false
		}
		return true
	}
	return false
}

// writeNotModified answers 304: headers only, no body.
func (s *Server) writeNotModified(w http.ResponseWriter, key servecache.Key, tier servecache.Outcome) {
	s.notModified.Inc()
	h := w.Header()
	h.Set("ETag", `"`+key.String()+`"`)
	h.Set("X-Memcond-Cache", tier.String())
	h.Set("X-Memcond-Key", key.String())
	w.WriteHeader(http.StatusNotModified)
}

// writeEntry serves a cache entry zero-copy: the stored wire bytes
// (identity or precomputed gzip, negotiated via Accept-Encoding) go
// straight to the response writer, and a matching If-None-Match
// collapses to 304. No encoding or compression happens here.
func (s *Server) writeEntry(w http.ResponseWriter, r *http.Request, e *servecache.Entry, outcome servecache.Outcome, key servecache.Key) {
	if etagMatch(r.Header.Get("If-None-Match"), key) {
		s.writeNotModified(w, key, outcome)
		return
	}
	h := w.Header()
	h.Set("ETag", `"`+key.String()+`"`)
	h.Set("X-Memcond-Cache", outcome.String())
	h.Set("X-Memcond-Key", key.String())
	h.Set("Content-Type", "application/json")
	h.Set("Vary", "Accept-Encoding")
	if e.Gzip != nil && acceptsGzip(r) {
		s.gzipServed.Inc()
		h.Set("Content-Encoding", "gzip")
		h.Set("Content-Length", strconv.Itoa(len(e.Gzip)))
		w.Write(e.Gzip)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(e.Data)))
	w.Write(e.Data)
}

func (s *Server) countOutcome(o servecache.Outcome) {
	switch o {
	case servecache.Hit:
		s.cacheHits.Inc()
	case servecache.Disk:
		s.cacheDisk.Inc()
	case servecache.Miss:
		s.cacheMisses.Inc()
	case servecache.Shared:
		s.cacheShared.Inc()
	}
}

// failRun maps a run error onto a status code: queue overflow is 503,
// the per-request deadline is 504, a client that vanished gets nothing,
// anything else is 500.
func (s *Server) failRun(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, errBusy):
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, err)
	case r.Context().Err() != nil:
		// The client is gone; there is nobody to answer.
		s.errorsTotal.Inc()
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.errorsTotal.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// revalidateResponse is the POST /v1/revalidate document.
type revalidateResponse struct {
	Experiment string             `json:"experiment"`
	Key        string             `json:"key"`
	Clean      bool               `json:"clean"`
	Updated    bool               `json:"updated"`
	Diff       *report.DiffReport `json:"diff"`
}

// handleRevalidate re-runs a cached entry and diffs the fresh report
// against the cached bytes — the serving form of `memconsim -diff`.
// A clean diff confirms the entry; a drifted one replaces the entry
// with the fresh report (the skelly-style incremental update) and says
// so, leaving the diff document as the evidence.
func (s *Server) handleRevalidate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Inc()
	s.revalidates.Inc()
	var probe struct {
		Experiment string `json:"experiment"`
	}
	body, err := readBody(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if probe.Experiment == "" {
		s.fail(w, http.StatusBadRequest, errors.New("revalidate body must name an experiment"))
		return
	}
	if _, err := experiments.Describe(probe.Experiment); err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	req := experiments.DefaultRequest(probe.Experiment)
	req.Version = s.cfg.Version
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if err := req.Normalize(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key := servecache.Key(req.CacheKey())
	entry, ok := s.cache.Lookup(key)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no cached entry for key %s (run the experiment first)", key))
		return
	}

	fresh, err := s.computeFor(req, key)(r.Context())
	if err != nil {
		s.failRun(w, r, err)
		return
	}
	saved, err := report.DecodeBytes(entry.Data)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("cached entry corrupt: %w", err))
		return
	}
	rerun, err := report.DecodeBytes(fresh)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	d := report.Diff(saved, rerun, report.Tolerance{})
	resp := revalidateResponse{
		Experiment: req.Experiment,
		Key:        key.String(),
		Clean:      d.Clean(),
		Diff:       d,
	}
	if !d.Clean() {
		s.revalDrifted.Inc()
		reqJSON, _ := req.MarshalCanonical()
		s.cache.Put(key, reqJSON, fresh)
		resp.Updated = true
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Memcond-Key", key.String())
	json.NewEncoder(w).Encode(resp)
	s.latency.Observe(time.Since(start).Nanoseconds())
}

// handleList serves the experiment catalogue.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	items := make([]item, 0, len(experiments.IDs()))
	for _, id := range experiments.IDs() {
		desc, err := experiments.Describe(id)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		items = append(items, item{ID: id, Title: desc})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(items)
}

// handleMetrics serves the Prometheus text exposition: the memcond_*
// request family (per tier and per shard) plus the memcon_* engine
// aggregates of every run the daemon executed. Tier and shard gauges
// are refreshed from cache snapshots at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	mem := s.cache.StatsSnapshot()
	s.memEntries.Set(float64(mem.Entries))
	s.memBytes.Set(float64(mem.Bytes))
	if s.store != nil {
		disk := s.store.StatsSnapshot()
		s.diskEntries.Set(float64(disk.Entries))
		s.diskBytes.Set(float64(disk.Bytes))
		s.diskCorrupt.Set(float64(disk.Corrupt))
	}
	for i, st := range s.cache.ShardStats() {
		if i >= len(s.shardReqs) {
			break
		}
		s.shardReqs[i].Set(float64(st.Hits + st.DiskHits + st.Misses + st.Shared))
		s.shardEntries[i].Set(float64(st.Entries))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// handleHealthz is pure liveness: 200 as long as the process can
// answer, even while draining — a draining daemon is alive, it just
// should not receive NEW traffic, which is /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"status":   "ok",
		"ready":    s.ready.Load(),
		"draining": s.draining.Load(),
		"cache":    s.cache.StatsSnapshot(),
		"workers":  s.cfg.Workers,
	}
	if s.store != nil {
		doc["disk"] = s.store.StatsSnapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// handleReadyz is the routability signal for load balancers: 503
// before the warm-boot scan completes (the daemon would answer, but
// its persisted corpus is not fully indexed yet) and 503 again from
// the moment SIGTERM starts the drain — so balancers stop routing
// before the listener actually closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "starting"})
	default:
		json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
	}
}

func wantsSSE(r *http.Request) bool {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		return true
	}
	return r.URL.Query().Get("progress") == "sse"
}

func readBody(r *http.Request) ([]byte, error) {
	body := http.MaxBytesReader(nil, r.Body, 1<<20)
	defer body.Close()
	b := &bytes.Buffer{}
	if _, err := b.ReadFrom(body); err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return b.Bytes(), nil
}
