package main

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memcon/internal/experiments"
	"memcon/internal/obs"
	"memcon/internal/report"
	"memcon/internal/servecache"
)

// smallBody is a cheap real-run request (the same working point the
// CLI's regression tests use).
const smallBody = `{"scale":0.05,"simtime_ns":200000,"mixes":3}`

// mustServer builds a ready-to-serve daemon: NewServer plus the
// warm-boot scan, so /readyz is green from the first request.
func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if _, err := srv.WarmBoot(); err != nil {
		t.Fatalf("WarmBoot: %v", err)
	}
	return srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, buf.Bytes()
}

// TestHitMissByteIdentical runs a real experiment twice: the second
// response must come from the cache and carry the exact bytes of the
// first — the determinism contract, served.
func TestHitMissByteIdentical(t *testing.T) {
	srv := mustServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	url := ts.URL + "/v1/experiments/fig4"
	resp1, body1 := postJSON(t, url, smallBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Memcond-Cache"); got != "miss" {
		t.Errorf("first POST cache header = %q, want miss", got)
	}
	if _, err := report.DecodeBytes(body1); err != nil {
		t.Fatalf("response is not a report document: %v", err)
	}

	resp2, body2 := postJSON(t, url, smallBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Memcond-Cache"); got != "hit" {
		t.Errorf("second POST cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit bytes differ from the original run")
	}
	if resp1.Header.Get("X-Memcond-Key") != resp2.Header.Get("X-Memcond-Key") {
		t.Error("identical requests produced different cache keys")
	}

	// A different seed is a different key and a fresh run.
	resp3, _ := postJSON(t, url, `{"seed":7,"scale":0.05,"simtime_ns":200000,"mixes":3}`)
	if got := resp3.Header.Get("X-Memcond-Cache"); got != "miss" {
		t.Errorf("different-seed POST cache header = %q, want miss", got)
	}
	if resp3.Header.Get("X-Memcond-Key") == resp1.Header.Get("X-Memcond-Key") {
		t.Error("different seed mapped to the same cache key")
	}
}

// stub installs a fake run on the server and returns a channel that
// receives the run context each time the stub starts.
func stub(srv *Server, fn func(ctx context.Context, req experiments.Request, rt experiments.Runtime) ([]byte, error)) {
	srv.run = fn
}

func TestSeedZeroAndDefaultsDecode(t *testing.T) {
	srv := mustServer(t, Config{Version: "srv-v1"})
	stub(srv, func(_ context.Context, req experiments.Request, _ experiments.Runtime) ([]byte, error) {
		return req.MarshalCanonical()
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Empty body: pure defaults, server version stamped.
	resp, body := postJSON(t, ts.URL+"/v1/experiments/fig4", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got experiments.Request
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want := experiments.DefaultRequest("fig4")
	want.Version = "srv-v1"
	if err := want.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("defaults request = %+v, want %+v", got, want)
	}

	// Explicit zero seed survives (no SeedSet special-casing).
	_, body = postJSON(t, ts.URL+"/v1/experiments/fig4", `{"seed":0}`)
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seed != 0 {
		t.Errorf("explicit seed 0 became %d", got.Seed)
	}

	// Client version overrides the server default.
	_, body = postJSON(t, ts.URL+"/v1/experiments/fig4", `{"version":"client-v2"}`)
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != "client-v2" {
		t.Errorf("client version = %q, want client-v2", got.Version)
	}
}

func TestRequestErrors(t *testing.T) {
	srv := mustServer(t, Config{MaxScale: 0.5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown id", "/v1/experiments/nope", "", http.StatusNotFound},
		{"bad json", "/v1/experiments/fig4", "{", http.StatusBadRequest},
		{"unknown field", "/v1/experiments/fig4", `{"sede":1}`, http.StatusBadRequest},
		{"conflicting id", "/v1/experiments/fig4", `{"experiment":"fig6"}`, http.StatusBadRequest},
		{"invalid scale", "/v1/experiments/fig4", `{"scale":-1}`, http.StatusBadRequest},
		{"over scale cap", "/v1/experiments/fig4", `{"scale":0.9}`, http.StatusBadRequest},
		{"revalidate no experiment", "/v1/revalidate", `{"scale":0.05}`, http.StatusBadRequest},
		{"revalidate unknown id", "/v1/revalidate", `{"experiment":"nope"}`, http.StatusNotFound},
		{"revalidate uncached", "/v1/revalidate", `{"experiment":"fig4"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error document missing: %s", tc.name, body)
		}
	}
	if n := srv.errorsTotal.Value(); n != int64(len(cases)) {
		t.Errorf("errors_total = %d, want %d", n, len(cases))
	}
}

func TestList(t *testing.T) {
	srv := mustServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var items []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != len(experiments.IDs()) {
		t.Errorf("catalogue has %d items, want %d", len(items), len(experiments.IDs()))
	}
	for _, it := range items {
		if it.ID == "" || it.Title == "" {
			t.Errorf("catalogue item incomplete: %+v", it)
		}
	}
}

// TestSingleflightShared collapses concurrent identical requests onto
// one run: exactly one miss, the rest shared, all byte-identical.
func TestSingleflightShared(t *testing.T) {
	srv := mustServer(t, Config{Workers: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var runCount atomic.Int64
	stub(srv, func(ctx context.Context, req experiments.Request, _ experiments.Runtime) ([]byte, error) {
		runCount.Add(1)
		once.Do(func() { close(started) })
		<-release
		return []byte(`{"shared":true}`), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 6
	var wg sync.WaitGroup
	outcomes := make([]string, n)
	bodies := make([][]byte, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, ts.URL+"/v1/experiments/fig4", smallBody)
		outcomes[0], bodies[0] = resp.Header.Get("X-Memcond-Cache"), body
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/experiments/fig4", smallBody)
			outcomes[i], bodies[i] = resp.Header.Get("X-Memcond-Cache"), body
		}()
	}
	// Let the followers join the flight before releasing the run (the
	// cache counts Shared at join time, not completion time).
	deadline := time.Now().Add(2 * time.Second)
	for srv.cache.StatsSnapshot().Shared < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := runCount.Load(); n != 1 {
		t.Errorf("experiment ran %d times, want 1", n)
	}
	var miss, shared int
	for i := 0; i < n; i++ {
		switch outcomes[i] {
		case "miss":
			miss++
		case "shared":
			shared++
		default:
			t.Errorf("caller %d outcome %q", i, outcomes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("caller %d got different bytes", i)
		}
	}
	if miss != 1 || shared != n-1 {
		t.Errorf("%d miss + %d shared, want 1 + %d", miss, shared, n-1)
	}
}

// TestSSEProgress streams a stubbed run: at least one progress
// snapshot with the emitted event counts, then the outcome and the
// result reassembled from its data lines.
func TestSSEProgress(t *testing.T) {
	srv := mustServer(t, Config{ProgressInterval: 5 * time.Millisecond})
	release := make(chan struct{})
	resultDoc := "{\n  \"doc\": \"line two\"\n}\n"
	stub(srv, func(ctx context.Context, req experiments.Request, rt experiments.Runtime) ([]byte, error) {
		for i := 0; i < 5; i++ {
			rt.Observer.OnEvent(obs.Event{Kind: obs.KindWrite, Page: uint32(i)})
		}
		rt.Observer.OnEvent(obs.Event{Kind: obs.KindTestQueued})
		<-release
		return []byte(resultDoc), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/experiments/fig4", strings.NewReader(smallBody))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	var (
		sawProgress  bool
		outcomeLine  string
		resultLines  []string
		event        string
		data         []string
		releasedOnce sync.Once
	)
	finish := func() {
		switch event {
		case "progress":
			joined := strings.Join(data, "\n")
			var snap struct {
				Total  int64            `json:"total"`
				Events map[string]int64 `json:"events"`
			}
			if err := json.Unmarshal([]byte(joined), &snap); err != nil {
				t.Fatalf("bad progress snapshot %q: %v", joined, err)
			}
			if snap.Events["write"] == 5 && snap.Events["test_queued"] == 1 && snap.Total == 6 {
				sawProgress = true
				// The run holds until we have proof of a snapshot.
				releasedOnce.Do(func() { close(release) })
			}
		case "outcome":
			outcomeLine = strings.Join(data, "\n")
		case "result":
			resultLines = data
		}
		event, data = "", nil
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: "))
		case line == "":
			finish()
		}
	}
	finish()

	if !sawProgress {
		t.Error("no progress snapshot with the emitted counts")
	}
	if !strings.Contains(outcomeLine, `"cache":"miss"`) {
		t.Errorf("outcome event = %q, want cache miss", outcomeLine)
	}
	got := strings.Join(resultLines, "\n") + "\n"
	if got != resultDoc {
		t.Errorf("result reassembled to %q, want %q", got, resultDoc)
	}
}

// TestCancellationMidRun pins that a client abandoning its request
// cancels the underlying run and caches nothing.
func TestCancellationMidRun(t *testing.T) {
	srv := mustServer(t, Config{})
	started := make(chan struct{})
	stopped := make(chan error, 1)
	stub(srv, func(ctx context.Context, req experiments.Request, _ experiments.Runtime) ([]byte, error) {
		close(started)
		<-ctx.Done()
		stopped <- ctx.Err()
		return nil, ctx.Err()
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/experiments/fig4", strings.NewReader(smallBody))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; err == nil {
		t.Error("cancelled request returned no error to the client")
	}
	select {
	case err := <-stopped:
		if err != context.Canceled {
			t.Errorf("run stopped with %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("run context never cancelled after the client left")
	}
	if n := srv.cache.Len(); n != 0 {
		t.Errorf("abandoned run left %d cache entries", n)
	}
}

// TestTimeout pins the per-request budget: a run exceeding it is
// cancelled and answered 504.
func TestTimeout(t *testing.T) {
	srv := mustServer(t, Config{Timeout: 20 * time.Millisecond})
	stub(srv, func(ctx context.Context, req experiments.Request, _ experiments.Runtime) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/experiments/fig4", smallBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if n := srv.timeouts.Value(); n != 1 {
		t.Errorf("timeouts_total = %d, want 1", n)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Errorf("timed-out run left %d cache entries", n)
	}
}

// TestBusy fills the one-worker pool and its one-deep queue; the third
// distinct request must be refused with 503 immediately.
func TestBusy(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, Queue: 1})
	started := make(chan struct{}, 3)
	release := make(chan struct{})
	stub(srv, func(ctx context.Context, req experiments.Request, _ experiments.Runtime) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(seed int) (int, string) {
		resp, _ := postJSON(t, ts.URL+"/v1/experiments/fig4",
			fmt.Sprintf(`{"seed":%d,"scale":0.05,"simtime_ns":200000,"mixes":3}`, seed))
		return resp.StatusCode, resp.Header.Get("X-Memcond-Cache")
	}

	codes := make(chan int, 2)
	go func() { c, _ := post(1); codes <- c }()
	<-started // request 1 occupies the worker
	go func() { c, _ := post(2); codes <- c }()
	deadline := time.Now().Add(2 * time.Second)
	for srv.queued.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if code, _ := post(3); code != http.StatusServiceUnavailable {
		t.Errorf("third request status %d, want 503", code)
	}
	if n := srv.busyTotal.Value(); n != 1 {
		t.Errorf("busy_total = %d, want 1", n)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("queued request status %d, want 200", code)
		}
	}
}

// TestRevalidate pins the serving form of -diff: clean on an
// undrifted entry, a populated diff plus a cache refresh on injected
// drift, and clean again afterwards.
func TestRevalidate(t *testing.T) {
	srv := mustServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	runURL := ts.URL + "/v1/experiments/fig4"
	resp, original := postJSON(t, runURL, smallBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding run failed: %d", resp.StatusCode)
	}
	keyHex := resp.Header.Get("X-Memcond-Key")

	revBody := `{"experiment":"fig4","scale":0.05,"simtime_ns":200000,"mixes":3}`
	var rev struct {
		Experiment string             `json:"experiment"`
		Key        string             `json:"key"`
		Clean      bool               `json:"clean"`
		Updated    bool               `json:"updated"`
		Diff       *report.DiffReport `json:"diff"`
	}
	resp, body := postJSON(t, ts.URL+"/v1/revalidate", revBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revalidate status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rev); err != nil {
		t.Fatal(err)
	}
	if !rev.Clean || rev.Updated || rev.Key != keyHex {
		t.Errorf("undrifted revalidate = %+v", rev)
	}

	// Inject drift: overwrite the cached entry with a different run's
	// bytes (same key, different seed's report).
	req := experiments.DefaultRequest("fig4")
	req.Scale, req.SimTimeNs, req.Mixes = 0.05, 200000, 3
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	key := servecache.Key(req.CacheKey())
	drifted := req
	drifted.Seed = 9
	res, err := experiments.RunContext(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	driftedBytes, err := res.Report().MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(driftedBytes, original) {
		t.Fatal("drift injection produced identical bytes; pick a different seed")
	}
	srv.cache.Put(key, nil, driftedBytes)

	resp, body = postJSON(t, ts.URL+"/v1/revalidate", revBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drifted revalidate status %d: %s", resp.StatusCode, body)
	}
	rev = struct {
		Experiment string             `json:"experiment"`
		Key        string             `json:"key"`
		Clean      bool               `json:"clean"`
		Updated    bool               `json:"updated"`
		Diff       *report.DiffReport `json:"diff"`
	}{}
	if err := json.Unmarshal(body, &rev); err != nil {
		t.Fatal(err)
	}
	if rev.Clean || !rev.Updated {
		t.Errorf("drifted revalidate = clean %v updated %v, want drift + update", rev.Clean, rev.Updated)
	}
	if rev.Diff == nil || rev.Diff.Clean() {
		t.Error("drifted revalidate carried no diff entries")
	}
	if n := srv.revalDrifted.Value(); n != 1 {
		t.Errorf("revalidate_drift_total = %d, want 1", n)
	}

	// The refresh healed the entry: revalidating again is clean, and a
	// plain request now serves the fresh bytes.
	resp, body = postJSON(t, ts.URL+"/v1/revalidate", revBody)
	if err := json.Unmarshal(body, &rev); err != nil {
		t.Fatal(err)
	}
	if !rev.Clean {
		t.Errorf("post-refresh revalidate not clean: %s", body)
	}
	_, served := postJSON(t, runURL, smallBody)
	if !bytes.Equal(served, original) {
		t.Error("healed entry does not serve the canonical run bytes")
	}
}

// TestMetricsEndpoint checks the Prometheus exposition carries the
// request counters.
func TestMetricsEndpoint(t *testing.T) {
	srv := mustServer(t, Config{})
	stub(srv, func(context.Context, experiments.Request, experiments.Runtime) ([]byte, error) {
		return []byte(`{}`), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/experiments/fig4", smallBody)
	postJSON(t, ts.URL+"/v1/experiments/fig4", smallBody)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"memcond_requests_total 2",
		"memcond_cache_hits_total 1",
		"memcond_cache_misses_total 1",
		"memcond_request_ns",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestGracefulDrain pins SIGTERM semantics at the http.Server level:
// Shutdown waits for the in-flight run to finish and the client still
// receives its full response.
func TestGracefulDrain(t *testing.T) {
	srv := mustServer(t, Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	stub(srv, func(ctx context.Context, req experiments.Request, _ experiments.Runtime) ([]byte, error) {
		close(started)
		select {
		case <-release:
			return []byte(`{"drained":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	url := "http://" + ln.Addr().String() + "/v1/experiments/fig4"
	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(smallBody))
		if err != nil {
			t.Errorf("in-flight request failed: %v", err)
			replies <- reply{}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		replies <- reply{resp.StatusCode, buf.Bytes()}
	}()
	<-started

	srv.SetDraining()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(context.Background()) }()

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-replies
	if r.code != http.StatusOK || !strings.Contains(string(r.body), "drained") {
		t.Errorf("drained request reply = %d %q", r.code, r.body)
	}

	// New connections are refused after the drain.
	if _, err := http.Post(url, "application/json", strings.NewReader(smallBody)); err == nil {
		t.Error("request accepted after drain completed")
	}
}

// TestReadyzLifecycle pins both unready windows: before the warm-boot
// scan completes and after SIGTERM starts the drain. /healthz stays
// 200 throughout — the process is alive in both windows, it just must
// not receive new traffic.
func TestReadyzLifecycle(t *testing.T) {
	srv, err := NewServer(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Window 1: listener up, warm boot not yet run.
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Errorf("pre-warm-boot /readyz = %d %q, want 503 starting", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ready":false`) {
		t.Errorf("pre-warm-boot /healthz = %d %q, want 200 with ready:false", code, body)
	}

	if _, err := srv.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("warm /readyz = %d %q, want 200 ready", code, body)
	}

	// Window 2: drain started.
	srv.SetDraining()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining /readyz = %d %q, want 503 draining", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"draining":true`) {
		t.Errorf("draining /healthz = %d %q, want 200 with draining:true", code, body)
	}
}

// TestETagNotModified pins the revalidation path: ETag is the cache
// key, and If-None-Match answers 304 with no body — including on a
// cold key, where the run still happens (populating the cache) but no
// bytes travel.
func TestETagNotModified(t *testing.T) {
	srv := mustServer(t, Config{})
	var runs atomic.Int64
	stub(srv, func(context.Context, experiments.Request, experiments.Runtime) ([]byte, error) {
		runs.Add(1)
		return []byte(`{"etag":"test"}`), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/experiments/fig4"

	resp, body := postJSON(t, url, smallBody)
	etag := resp.Header.Get("ETag")
	if etag == "" || etag != `"`+resp.Header.Get("X-Memcond-Key")+`"` {
		t.Fatalf("ETag = %q, want quoted cache key %q", etag, resp.Header.Get("X-Memcond-Key"))
	}

	post := func(inm string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest("POST", url, strings.NewReader(smallBody))
		req.Header.Set("Content-Type", "application/json")
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// Matching tag (exact, list, weak, wildcard): 304, empty body, no run.
	for _, inm := range []string{etag, `"zzz", ` + etag, "W/" + etag, "*"} {
		resp, b := post(inm)
		if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
			t.Errorf("If-None-Match %q = %d with %d body bytes, want 304 empty", inm, resp.StatusCode, len(b))
		}
		if got := resp.Header.Get("X-Memcond-Cache"); got != "hit" {
			t.Errorf("If-None-Match %q tier = %q, want hit", inm, got)
		}
	}
	// Stale tag: full 200 body.
	if resp, b := post(`"0000"`); resp.StatusCode != http.StatusOK || !bytes.Equal(b, body) {
		t.Errorf("stale If-None-Match = %d %q, want 200 with original bytes", resp.StatusCode, b)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("experiment ran %d times across revalidations, want 1", n)
	}

	// Cold key + wildcard: the run happens, the answer is still 304.
	req, _ := http.NewRequest("POST", url, strings.NewReader(`{"seed":3,"scale":0.05,"simtime_ns":200000,"mixes":3}`))
	req.Header.Set("If-None-Match", "*")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("cold-key If-None-Match = %d, want 304", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Memcond-Cache"); got != "miss" {
		t.Errorf("cold-key 304 tier = %q, want miss", got)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("cold-key revalidation ran %d times total, want 2", n)
	}
	if n := srv.notModified.Value(); n != 5 {
		t.Errorf("not_modified_total = %d, want 5", n)
	}
}

// TestGzipNegotiation pins zero-copy content encoding: the precomputed
// gzip variant decompresses to exactly the identity bytes, and q=0
// (or absence) keeps the identity form.
func TestGzipNegotiation(t *testing.T) {
	srv := mustServer(t, Config{})
	payload := `{"gzip":"` + strings.Repeat("x", 2048) + `"}`
	stub(srv, func(context.Context, experiments.Request, experiments.Runtime) ([]byte, error) {
		return []byte(payload), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/experiments/fig4"

	post := func(acceptEncoding string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest("POST", url, strings.NewReader(smallBody))
		req.Header.Set("Content-Type", "application/json")
		if acceptEncoding != "" {
			// Setting the header manually disables the transport's
			// transparent decompression: we see the raw wire bytes.
			req.Header.Set("Accept-Encoding", acceptEncoding)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, identity := post("identity")
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity request got Content-Encoding %q", enc)
	}
	if string(identity) != payload {
		t.Fatalf("identity body = %q", identity)
	}

	resp, wire := post("gzip")
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("gzip request got Content-Encoding %q", enc)
	}
	if resp.Header.Get("Content-Length") != strconv.Itoa(len(wire)) {
		t.Errorf("gzip Content-Length = %q, want %d", resp.Header.Get("Content-Length"), len(wire))
	}
	zr, err := gzip.NewReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, identity) {
		t.Error("gzip variant does not decompress to the identity bytes")
	}

	if resp, b := post("gzip;q=0, identity"); resp.Header.Get("Content-Encoding") != "" || !bytes.Equal(b, identity) {
		t.Errorf("q=0 request served encoding %q", resp.Header.Get("Content-Encoding"))
	}
	if n := srv.gzipServed.Value(); n != 1 {
		t.Errorf("gzip_total = %d, want 1", n)
	}
}

// TestDiskTierRestart pins the tentpole invariant end-to-end: a new
// daemon over the same cache directory serves the prior run's exact
// bytes from disk — no recompute — and promotes the entry to memory.
func TestDiskTierRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := mustServer(t, Config{CacheDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	url1 := ts1.URL + "/v1/experiments/fig4"
	resp, original := postJSON(t, url1, smallBody)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Memcond-Cache") != "miss" {
		t.Fatalf("seed run = %d %s", resp.StatusCode, resp.Header.Get("X-Memcond-Cache"))
	}
	etag := resp.Header.Get("ETag")
	ts1.Close()

	// "Restart": a fresh server over the same directory, with a run
	// function that must never fire.
	srv2 := mustServer(t, Config{CacheDir: dir})
	stub(srv2, func(context.Context, experiments.Request, experiments.Runtime) ([]byte, error) {
		return nil, errors.New("restarted daemon re-ran a persisted experiment")
	})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	url2 := ts2.URL + "/v1/experiments/fig4"

	resp, served := postJSON(t, url2, smallBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted serve = %d: %s", resp.StatusCode, served)
	}
	if got := resp.Header.Get("X-Memcond-Cache"); got != "disk" {
		t.Errorf("restarted tier = %q, want disk", got)
	}
	if !bytes.Equal(served, original) {
		t.Error("disk-served bytes differ from the original run")
	}
	if resp.Header.Get("ETag") != etag {
		t.Errorf("ETag changed across restart: %q vs %q", resp.Header.Get("ETag"), etag)
	}

	// The disk hit promoted the entry: the next request is a memory hit,
	// and a 304 revalidation needs no body either way.
	resp, promoted := postJSON(t, url2, smallBody)
	if got := resp.Header.Get("X-Memcond-Cache"); got != "hit" {
		t.Errorf("post-promotion tier = %q, want hit", got)
	}
	if !bytes.Equal(promoted, original) {
		t.Error("promoted bytes differ from the original run")
	}

	req, _ := http.NewRequest("POST", url2, strings.NewReader(smallBody))
	req.Header.Set("If-None-Match", etag)
	resp304, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp304.Body.Close()
	if resp304.StatusCode != http.StatusNotModified {
		t.Errorf("restart revalidation = %d, want 304", resp304.StatusCode)
	}
}
