// Command memcond serves the MEMCON experiment registry over HTTP.
//
// It exposes the same 28 experiments as memconsim, but as a daemon
// with a content-addressed result cache: POST /v1/experiments/{id}
// with a provenance-options JSON body runs the experiment on a bounded
// worker pool and returns the canonical report; an identical request —
// same id, seed, scale, simulated time, mixes, fleet size and report
// version — is answered from the cache, byte-identical, without
// re-running. Concurrent identical requests collapse onto a single
// run (singleflight). The determinism contract the CLI pins with its
// golden files is what makes this sound: a cache hit IS the answer.
//
// The cache is two-tier: a sharded in-memory LRU in front of an
// optional content-addressed disk store (-cache-dir). Every miss is
// written through to disk; a restarted daemon warm-boots by scanning
// the directory and serves its prior corpus without re-running a
// single experiment (X-Memcond-Cache: disk). Entries carry
// precomputed wire bytes — canonical JSON and its gzip form — so a
// warm hit does no encoding or compression, and ETag = cache key
// lets revalidating clients get 304 Not Modified with no body at all.
//
// Endpoints:
//
//	GET  /v1/experiments       catalogue of ids and titles
//	POST /v1/experiments/{id}  run (or fetch) one experiment
//	POST /v1/revalidate        re-run a cached entry, diff against it
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              liveness + cache stats
//	GET  /readyz               routability: 503 while starting/draining
//
// With Accept: text/event-stream (or ?progress=sse) the experiment
// endpoint streams progress snapshots of the run's engine event
// counters before the result. SIGTERM drains gracefully: /readyz
// flips to 503, in-flight requests finish, new connections are
// refused.
//
// Usage:
//
//	memcond [-addr host:port] [-addr-file path] [-workers n] [-queue n]
//	        [-timeout d] [-cache n] [-cache-mem bytes] [-cache-shards n]
//	        [-cache-dir path] [-cache-disk bytes]
//	        [-report-version v] [-max-scale f]
//
// -addr-file writes the bound address (useful with -addr :0) so
// scripts can find the server without racing the log output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "experiments running concurrently")
		queue     = flag.Int("queue", 64, "requests allowed to wait for a worker beyond those running")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request run budget before 504")
		cacheN    = flag.Int("cache", 1024, "result cache entries per tier (LRU)")
		cacheMem  = flag.Int64("cache-mem", 0, "memory cache byte budget, 0 = unlimited")
		shards    = flag.Int("cache-shards", 16, "memory cache shard count")
		cacheDir  = flag.String("cache-dir", "", "persist results to this directory (restart-surviving cache)")
		cacheDisk = flag.Int64("cache-disk", 0, "disk cache byte budget, 0 = unlimited")
		version   = flag.String("report-version", "", "version stamped into reports when the client sends none")
		maxScale  = flag.Float64("max-scale", 0, "largest scale a request may ask for (0 = no cap)")
	)
	flag.Parse()

	srv, err := NewServer(Config{
		Workers:        *workers,
		Queue:          *queue,
		Timeout:        *timeout,
		CacheEntries:   *cacheN,
		CacheShards:    *shards,
		CacheMemBytes:  *cacheMem,
		CacheDir:       *cacheDir,
		CacheDiskBytes: *cacheDisk,
		Version:        *version,
		MaxScale:       *maxScale,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcond: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcond: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "memcond: writing -addr-file: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "memcond: listening on %s (%d workers, queue %d, cache %d x %d shards)\n",
		ln.Addr(), srv.cfg.Workers, srv.cfg.Queue, srv.cfg.CacheEntries, srv.cfg.CacheShards)

	// Warm-boot in the background: the listener is up (so health
	// probes answer) but /readyz stays 503 until the persisted corpus
	// is indexed and every prior result is servable without a re-run.
	go func() {
		n, err := srv.WarmBoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "memcond: warm boot: %v\n", err)
			return
		}
		if srv.cfg.CacheDir != "" {
			fmt.Fprintf(os.Stderr, "memcond: warm boot indexed %d persisted entries from %s\n", n, srv.cfg.CacheDir)
		}
	}()

	httpSrv := &http.Server{Handler: srv.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := <-sig
		fmt.Fprintf(os.Stderr, "memcond: %s received, draining\n", s)
		srv.SetDraining()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "memcond: drain: %v\n", err)
			httpSrv.Close()
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "memcond: %v\n", err)
		return 1
	}
	<-done
	fmt.Fprintln(os.Stderr, "memcond: drained cleanly")
	return 0
}
