package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Netflix") {
		t.Error("listing missing applications")
	}
}

func TestGenerateAndInspectV1(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	var out strings.Builder
	if err := run([]string{"-app", "BlurMotion", "-scale", "0.02", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Error("generation output missing")
	}
	out.Reset()
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BlurMotion") {
		t.Errorf("inspection missing trace name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "write-interval distribution") {
		t.Error("inspection missing histogram")
	}
}

func TestGenerateAndInspectCompactReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.trace")
	var out strings.Builder
	if err := run([]string{"-app", "BlurMotion", "-scale", "0.02", "-reads", "-compact", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BlurMotion-reads") {
		t.Errorf("compact read trace not inspectable:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "NoSuchApp", "-out", "/tmp/x"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"-app", "Netflix"}, &out); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-inspect", "/nonexistent/file"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("empty invocation accepted")
	}
}

func TestHeadStreamsCompact(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.trace")
	v2 := filepath.Join(dir, "v2.trace")
	var out strings.Builder
	if err := run([]string{"-app", "BlurMotion", "-scale", "0.02", "-out", v1}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", "BlurMotion", "-scale", "0.02", "-compact", "-out", v2}, &out); err != nil {
		t.Fatal(err)
	}
	var h1, h2 strings.Builder
	if err := run([]string{"-head", "5", v1}, &h1); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-head", "5", v2}, &h2); err != nil {
		t.Fatal(err)
	}
	if h1.String() != h2.String() {
		t.Fatalf("-head differs between formats:\n--- v1 ---\n%s--- compact ---\n%s", h1.String(), h2.String())
	}
	if got := strings.Count(h1.String(), "page "); got != 5 {
		t.Errorf("-head 5 printed %d events:\n%s", got, h1.String())
	}
	if !strings.Contains(h1.String(), "BlurMotion") {
		t.Errorf("-head missing trace header:\n%s", h1.String())
	}
	if err := run([]string{"-head", "5"}, &h1); err == nil {
		t.Error("-head without a file argument accepted")
	}
	if err := run([]string{"-head", "5", v1, v2}, &h1); err == nil {
		t.Error("-head with two file arguments accepted")
	}
}
