// Command tracegen generates and inspects MEMCON write traces.
//
// Usage:
//
//	tracegen -list
//	tracegen -app Netflix -out netflix.trace [-scale 1.0] [-seed 1] [-compact] [-reads]
//	tracegen -inspect netflix.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memcon/internal/stats"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		list    = fs.Bool("list", false, "list available applications")
		app     = fs.String("app", "", "application to generate")
		outPath = fs.String("out", "", "output trace file")
		inspect = fs.String("inspect", "", "trace file to inspect")
		scale   = fs.Float64("scale", 1.0, "page-count scale in (0,1]")
		seed    = fs.Int64("seed", 1, "random seed")
		compact = fs.Bool("compact", false, "write the delta/varint v2 format")
		reads   = fs.Bool("reads", false, "generate the READ trace instead of writes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, a := range workload.Apps() {
			fmt.Fprintf(out, "%-16s %-18s %6.1f s  %4.1f GB  %d pages\n",
				a.Name, a.Type, a.DurationSec, a.MemGB, a.Pages)
		}
		return nil
	case *app != "":
		spec, err := workload.AppByName(*app)
		if err != nil {
			return err
		}
		var tr *trace.Trace
		if *reads {
			tr = spec.GenerateReads(*seed, *scale)
		} else {
			tr = spec.Generate(*seed, *scale)
		}
		if *outPath == "" {
			return fmt.Errorf("-out is required with -app")
		}
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *outPath, err)
		}
		defer f.Close()
		if *compact {
			err = tr.WriteCompact(f)
		} else {
			err = tr.Write(f)
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(out, "wrote %s: %d events, %d pages, %.1f s\n",
			*outPath, len(tr.Events), tr.Pages(), float64(tr.Duration)/float64(trace.Second))
		return nil
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			return fmt.Errorf("opening %s: %w", *inspect, err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			// Fall back to the compact v2 format.
			if _, serr := f.Seek(0, 0); serr != nil {
				return fmt.Errorf("rewinding %s: %w", *inspect, serr)
			}
			tr, err = trace.ReadCompact(f)
			if err != nil {
				return fmt.Errorf("reading trace (both formats): %w", err)
			}
		}
		describe(out, tr)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -app, or -inspect is required")
	}
}

func describe(out io.Writer, tr *trace.Trace) {
	fmt.Fprintf(out, "trace %q: %d events, %d pages, %.1f s\n",
		tr.Name, len(tr.Events), tr.Pages(), float64(tr.Duration)/float64(trace.Second))
	h := stats.NewLogHistogram(1, 16)
	for _, iv := range tr.Intervals(true) {
		h.Add(iv)
	}
	fmt.Fprintln(out, "\nwrite-interval distribution (ms buckets):")
	fmt.Fprint(out, h.String())
	fmt.Fprintf(out, "\nintervals >= 1024 ms: %.3f%% of count, %.1f%% of time\n",
		100*h.FractionAtOrAbove(1024), 100*h.WeightFractionAtOrAbove(1024))
}
