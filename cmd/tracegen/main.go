// Command tracegen generates and inspects MEMCON write traces.
//
// Usage:
//
//	tracegen -list
//	tracegen -app Netflix -out netflix.trace [-scale 1.0] [-seed 1] [-compact] [-reads]
//	tracegen -inspect netflix.trace
//	tracegen -head 10 netflix.trace
//
// -head streams the first N events of a trace file without
// materializing it — compact (v2) files decode incrementally, so
// peeking at a multi-GB trace touches only its leading bytes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"memcon/internal/stats"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		list    = fs.Bool("list", false, "list available applications")
		app     = fs.String("app", "", "application to generate")
		outPath = fs.String("out", "", "output trace file")
		inspect = fs.String("inspect", "", "trace file to inspect")
		scale   = fs.Float64("scale", 1.0, "page-count scale in (0,1]")
		seed    = fs.Int64("seed", 1, "random seed")
		compact = fs.Bool("compact", false, "write the delta/varint v2 format")
		reads   = fs.Bool("reads", false, "generate the READ trace instead of writes")
		head    = fs.Int("head", 0, "print the first N events of the trace file argument (streams; no materialization)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, a := range workload.Apps() {
			fmt.Fprintf(out, "%-16s %-18s %6.1f s  %4.1f GB  %d pages\n",
				a.Name, a.Type, a.DurationSec, a.MemGB, a.Pages)
		}
		return nil
	case *app != "":
		spec, err := workload.AppByName(*app)
		if err != nil {
			return err
		}
		var tr *trace.Trace
		if *reads {
			tr = spec.GenerateReads(*seed, *scale)
		} else {
			tr = spec.Generate(*seed, *scale)
		}
		if *outPath == "" {
			return fmt.Errorf("-out is required with -app")
		}
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *outPath, err)
		}
		defer f.Close()
		if *compact {
			err = tr.WriteCompact(f)
		} else {
			err = tr.Write(f)
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(out, "wrote %s: %d events, %d pages, %.1f s\n",
			*outPath, len(tr.Events), tr.Pages(), float64(tr.Duration)/float64(trace.Second))
		return nil
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			return fmt.Errorf("opening %s: %w", *inspect, err)
		}
		defer f.Close()
		tr, err := trace.ReadAuto(f)
		if err != nil {
			return fmt.Errorf("reading trace: %w", err)
		}
		describe(out, tr)
		return nil
	case *head > 0:
		if fs.NArg() != 1 {
			return fmt.Errorf("-head needs exactly one trace file argument")
		}
		return printHead(out, fs.Arg(0), *head)
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -app, -inspect, or -head is required")
	}
}

// printHead prints the first n events of a trace file. Compact files
// decode through trace.Stream, so only the leading bytes are read; v1
// files are materialized (their fixed-width layout is cheap anyway).
func printHead(out io.Writer, path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	format, err := trace.DetectFormat(br)
	if err != nil {
		return err
	}
	var src trace.Source
	var total int
	switch format {
	case trace.FormatCompact:
		s, err := trace.NewStream(br)
		if err != nil {
			return err
		}
		src, total = s, int(s.Events())
	case trace.FormatV1:
		tr, err := trace.Read(br)
		if err != nil {
			return err
		}
		src, total = tr.Source(), len(tr.Events)
	default:
		return fmt.Errorf("%s: not a trace file (unknown magic)", path)
	}
	fmt.Fprintf(out, "trace %q: %.1f s, %d events\n",
		src.Name(), float64(src.Duration())/float64(trace.Second), total)
	for i := 0; i < n; i++ {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%10d µs  page %d\n", ev.At, ev.Page)
	}
	return nil
}

func describe(out io.Writer, tr *trace.Trace) {
	fmt.Fprintf(out, "trace %q: %d events, %d pages, %.1f s\n",
		tr.Name, len(tr.Events), tr.Pages(), float64(tr.Duration)/float64(trace.Second))
	h := stats.NewLogHistogram(1, 16)
	for _, iv := range tr.Intervals(true) {
		h.Add(iv)
	}
	fmt.Fprintln(out, "\nwrite-interval distribution (ms buckets):")
	fmt.Fprint(out, h.String())
	fmt.Fprintf(out, "\nintervals >= 1024 ms: %.3f%% of count, %.1f%% of time\n",
		100*h.FractionAtOrAbove(1024), 100*h.WeightFractionAtOrAbove(1024))
}
