package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dramtestMetrics runs the CLI with -metrics and returns the document.
func dramtestMetrics(t *testing.T, format string, args ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics."+format)
	full := append(args, "-metrics", path, "-metrics-format", format)
	var out strings.Builder
	if err := run(full, &out); err != nil {
		t.Fatalf("run(%v): %v", full, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics file: %v", err)
	}
	return string(data)
}

// TestMetricsPatternRun checks read-back failures flow into the
// row-failure counters.
func TestMetricsPatternRun(t *testing.T) {
	out := dramtestMetrics(t, "json", withFast("-pattern", "checker-0", "-idle", "656")...)
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v\n%s", err, out)
	}
	if doc.Counters["memcon_row_failures_total"] == 0 {
		t.Errorf("no row failures counted at a 656 ms idle:\n%s", out)
	}
	if doc.Counters["memcon_failing_cells_total"] < doc.Counters["memcon_row_failures_total"] {
		t.Errorf("fewer failing cells than failing rows:\n%s", out)
	}
}

// TestMetricsAllFailParallelInvariant checks the weak-row scan feeds
// the same counts for any worker count: counter aggregation is
// commutative, so the document is byte-identical.
func TestMetricsAllFailParallelInvariant(t *testing.T) {
	base := withFast("-allfail", "-idle", "656")
	want := dramtestMetrics(t, "json", append(base, "-parallel", "1")...)
	if !strings.Contains(want, "memcon_weak_rows_total") {
		t.Fatalf("weak-row counter missing:\n%s", want)
	}
	for _, n := range []string{"4", "8"} {
		got := dramtestMetrics(t, "json", append(base, "-parallel", n)...)
		if got != want {
			t.Errorf("metrics differ between -parallel 1 and -parallel %s\n--- 1 ---\n%s\n--- %s ---\n%s", n, want, n, got)
		}
	}
}

func TestMetricsPromFormat(t *testing.T) {
	out := dramtestMetrics(t, "prom", withFast("-pattern", "solid-0", "-idle", "656")...)
	if !strings.Contains(out, "# TYPE memcon_row_failures_total counter") {
		t.Errorf("prometheus output missing TYPE header:\n%s", out)
	}
}
