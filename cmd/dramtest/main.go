// Command dramtest is the SoftMC-style chip characterization tool: it
// builds a simulated DRAM chip, fills it with a data pattern or a SPEC
// benchmark's content image, keeps it idle for a refresh interval, and
// reports the data-dependent failures observed on read-back.
//
// Usage:
//
//	dramtest -pattern checker-0 [-idle 328] [-seed 42] [-rows 4096]
//	dramtest -content mcf [-idle 328]
//	dramtest -allfail [-idle 328]
//	dramtest -profile [-rounds 2] [-guardband 1.25]
//	dramtest -hammer 60000 [-pattern checker-0]
//	dramtest -patterns        # list pattern names
//
// -hammer runs a read-disturb scan instead of a retention test: every
// victim row's physical aggressors are hammered the given number of
// times per refresh window and the cells that flip under the current
// content (the -pattern fill) are reported. The victim population is
// sampled over the same silicon as the retention model, so the scan is
// deterministic in (-seed, -rows, -mapping).
//
// Observability: -metrics/-metrics-format write aggregated row-failure
// and weak-row counts after the run; -pprof serves live profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"memcon/internal/disturb"
	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/obs"
	"memcon/internal/profiler"
	"memcon/internal/softmc"
	"memcon/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dramtest: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dramtest", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		patterns = fs.Bool("patterns", false, "list available data patterns")
		pattern  = fs.String("pattern", "", "data pattern to test with")
		content  = fs.String("content", "", "SPEC benchmark content to test with")
		allfail  = fs.Bool("allfail", false, "report worst-case (any-pattern) failing rows")
		profile  = fs.Bool("profile", false, "run a RAIDR/REAPER-style profiling campaign and report escapes")
		hammer   = fs.Int64("hammer", 0, "read-disturb scan: hammer every victim row's aggressors this many times per window and report flipped cells")
		rounds   = fs.Int("rounds", 2, "profiling rounds (with -profile)")
		guard    = fs.Float64("guardband", 1.25, "profiling idle-time guardband (with -profile)")
		idleMs   = fs.Int64("idle", 328, "idle time in ms (328 ms = paper's 4 s at 45C)")
		seed     = fs.Int64("seed", 42, "chip seed")
		mapping  = fs.String("mapping", "", "address mapping scheme: "+strings.Join(dram.MappingNames(), ", ")+" (default mapping when empty)")
		rows     = fs.Int("rows", 4096, "rows per bank")
		nworkers = fs.Int("parallel", runtime.NumCPU(), "worker count for the -allfail, -pattern, and -content scans (results are identical for any value)")
		metrics  = fs.String("metrics", "", `write aggregated run metrics to this file ("-" for stdout)`)
		mformat  = fs.String("metrics-format", "json", "metrics output format: json, prom, or table")
		pprofOn  = fs.String("pprof", "", "serve net/http/pprof on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nworkers < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *nworkers)
	}
	format, err := obs.ParseFormat(*mformat)
	if err != nil {
		return err
	}
	if *pprofOn != "" {
		bound, stopPprof, err := obs.StartPprof(*pprofOn)
		if err != nil {
			return err
		}
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "dramtest: pprof at http://%s/debug/pprof/\n", bound)
	}

	if *patterns {
		for _, p := range softmc.StandardPatterns(100) {
			fmt.Fprintln(out, p.Name)
		}
		return nil
	}

	geom := dram.DefaultGeometry()
	geom.RowsPerBank = *rows
	tester, model, mod, err := buildChip(geom, uint64(*seed), *mapping)
	if err != nil {
		return err
	}
	tester.SetParallelism(*nworkers)
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		tester.SetObserver(obs.NewMetrics(reg))
	}
	idle := dram.Nanoseconds(*idleMs) * dram.Millisecond

	runErr := func() error {
		switch {
		case *hammer > 0:
			name := *pattern
			if name == "" {
				name = "checker-0"
			}
			p, err := findPattern(name)
			if err != nil {
				return err
			}
			return hammerScan(out, mod, model, uint64(*seed), p, *hammer)
		case *profile:
			cfg := profiler.DefaultConfig()
			cfg.Rounds = *rounds
			cfg.Guardband = *guard
			cfg.TargetIdle = idle
			p, err := profiler.Run(tester, geom, cfg)
			if err != nil {
				return err
			}
			rep := profiler.Escapes(p, model, idle)
			fmt.Fprintf(out, "profile: %d runs at %d ms idle (guardband %.2f)\n",
				p.Runs, p.IdleUsed/dram.Millisecond, *guard)
			fmt.Fprintf(out, "  flagged weak rows: %d (%.2f%% of module)\n", rep.ProfiledRows, 100*p.WeakRowFraction())
			fmt.Fprintf(out, "  ground truth:      %d weak rows\n", rep.TrueWeakRows)
			fmt.Fprintf(out, "  ESCAPES:           %d (%.1f%% of truly weak rows)\n", rep.Escapes, 100*rep.EscapeRate())
			fmt.Fprintf(out, "  false alarms:      %d\n", rep.FalseAlarms)
			return nil
		case *allfail:
			frac, err := tester.AllFailFractionParallel(context.Background(), idle, *nworkers)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "rows failing under ANY pattern at %d ms idle: %.2f%%\n", *idleMs, 100*frac)
			return nil
		case *pattern != "":
			p, err := findPattern(*pattern)
			if err != nil {
				return err
			}
			fails, err := tester.RunPattern(p, idle)
			if err != nil {
				return err
			}
			report(out, geom, fails, *idleMs, p.Name)
			return nil
		case *content != "":
			spec, err := workload.ContentByName(*content)
			if err != nil {
				return err
			}
			img := spec.Image(geom.RowsPerBank, geom.ColsPerRow, 0, *seed)
			fails, err := tester.RunContent(img, idle)
			if err != nil {
				return err
			}
			report(out, geom, fails, *idleMs, "content:"+spec.Name)
			return nil
		default:
			fs.Usage()
			return fmt.Errorf("one of -patterns, -pattern, -content, -allfail, -profile, or -hammer is required")
		}
	}()
	if runErr != nil {
		return runErr
	}
	if reg != nil {
		return writeMetrics(*metrics, out, reg, format)
	}
	return nil
}

// writeMetrics renders the registry to path ("-" selects the CLI
// output stream).
func writeMetrics(path string, out io.Writer, reg *obs.Registry, format obs.Format) error {
	if path == "-" {
		return reg.Write(out, format)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics file: %w", err)
	}
	if err := reg.Write(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildChip(geom dram.Geometry, seed uint64, mapping string) (*softmc.Tester, *faults.Model, *dram.Module, error) {
	scr, err := dram.NewMappedScrambler(geom, seed, nil, mapping)
	if err != nil {
		return nil, nil, nil, err
	}
	model, err := faults.NewModel(geom, scr, seed, faults.DefaultParams())
	if err != nil {
		return nil, nil, nil, err
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		return nil, nil, nil, err
	}
	tester, err := softmc.NewTester(mod, model)
	if err != nil {
		return nil, nil, nil, err
	}
	return tester, model, mod, nil
}

// hammerScan is the -hammer mode: sample the chip's read-disturb victim
// population, fill the module with the pattern, apply the given hammer
// count to every victim row's window, and report the rows and cells
// that flip under the current content.
func hammerScan(out io.Writer, mod *dram.Module, model *faults.Model, seed uint64, p softmc.Pattern, hammer int64) error {
	dm, err := disturb.NewModel(model, seed, disturb.DefaultParams())
	if err != nil {
		return err
	}
	geom := mod.Geometry()
	for b := 0; b < geom.BanksPerChip; b++ {
		for r := 0; r < geom.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			p.Fill(mod.RowRef(a), r)
		}
	}
	w := faults.RowWindow{Hammer: hammer}
	var victims, flippedRows, flippedCells, shown int
	buf := make([]int, 0, 8)
	for b := 0; b < geom.BanksPerChip; b++ {
		rows, thresholds := dm.VictimRows(b)
		victims += len(rows)
		for i, r := range rows {
			a := dram.RowAddress{Bank: b, Row: int(r)}
			buf = dm.AppendFailures(buf[:0], mod, a, w)
			if len(buf) == 0 {
				continue
			}
			flippedRows++
			flippedCells += len(buf)
			if shown < 10 {
				fmt.Fprintf(out, "  bank %d row %5d (HCfirst %d): %d cells %v, aggressors %v\n",
					b, r, thresholds[i], len(buf), buf, dm.Aggressors(a))
				shown++
			}
		}
	}
	if flippedRows > shown {
		fmt.Fprintf(out, "  ... %d more rows\n", flippedRows-shown)
	}
	fmt.Fprintf(out, "hammer %d/window under %s: %d of %d victim rows flip (%d rows total), %d cells\n",
		hammer, p.Name, flippedRows, victims, geom.TotalRows(), flippedCells)
	return nil
}

func findPattern(name string) (softmc.Pattern, error) {
	for _, p := range softmc.StandardPatterns(100) {
		if p.Name == name {
			return p, nil
		}
	}
	return softmc.Pattern{}, fmt.Errorf("unknown pattern %q (see -patterns)", name)
}

func report(out io.Writer, geom dram.Geometry, fails []softmc.RowFailure, idleMs int64, label string) {
	cells := 0
	for _, f := range fails {
		cells += len(f.Cells)
	}
	total := geom.TotalRows()
	fmt.Fprintf(out, "%s @ %d ms idle: %d failing rows of %d (%.2f%%), %d failing cells\n",
		label, idleMs, len(fails), total, 100*float64(len(fails))/float64(total), cells)
	for i, f := range fails {
		if i >= 10 {
			fmt.Fprintf(out, "  ... %d more rows\n", len(fails)-10)
			break
		}
		fmt.Fprintf(out, "  bank %d row %5d: %d cells %v\n", f.Addr.Bank, f.Addr.Row, len(f.Cells), f.Cells)
	}
}
