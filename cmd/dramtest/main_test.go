package main

import (
	"strings"
	"testing"
)

// Small chip keeps the CLI tests fast.
var fast = []string{"-rows", "256"}

func withFast(args ...string) []string { return append(args, fast...) }

func TestPatternsListing(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-patterns"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"solid-0", "checker-0", "rowstripe-1"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("pattern listing missing %q", name)
		}
	}
}

func TestPatternRun(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-pattern", "checker-0", "-idle", "656"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "failing rows") {
		t.Errorf("pattern run output incomplete:\n%s", out.String())
	}
}

func TestContentRun(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-content", "mcf"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "content:mcf") {
		t.Errorf("content run output incomplete:\n%s", out.String())
	}
}

func TestAllFail(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-allfail"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ANY pattern") {
		t.Errorf("allfail output incomplete:\n%s", out.String())
	}
}

func TestProfileRun(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-profile", "-rounds", "1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ESCAPES") {
		t.Errorf("profile output incomplete:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-pattern", "no-such-pattern"), &out); err == nil {
		t.Error("unknown pattern accepted")
	}
	if err := run(withFast("-content", "no-such-benchmark"), &out); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("empty invocation accepted")
	}
}
