package main

import (
	"strings"
	"testing"
)

// TestAllFailParallelInvariant pins the -parallel contract for the
// row scan: the ALL FAIL fraction is a pure per-row predicate, so the
// report must be byte-identical for any worker count.
func TestAllFailParallelInvariant(t *testing.T) {
	results := make(map[string]string)
	for _, n := range []string{"1", "4", "8"} {
		var out strings.Builder
		if err := run(withFast("-allfail", "-parallel", n), &out); err != nil {
			t.Fatalf("-allfail -parallel %s: %v", n, err)
		}
		results[n] = out.String()
	}
	for _, n := range []string{"4", "8"} {
		if results[n] != results["1"] {
			t.Errorf("-parallel %s output differs from -parallel 1:\n%q\nvs\n%q",
				n, results[n], results["1"])
		}
	}
}

// TestReadBackParallelInvariant pins the -parallel contract for the
// pattern and content read-back scans: ReadBack evaluates against
// frozen content and commits flips in a sequential pass, so the full
// failure report must be byte-identical for any worker count.
func TestReadBackParallelInvariant(t *testing.T) {
	scans := [][]string{
		{"-pattern", "checker-0", "-idle", "656"},
		{"-pattern", "rowstripe-0", "-idle", "656"},
		{"-content", "mcf", "-idle", "656"},
	}
	for _, scan := range scans {
		scan := scan
		t.Run(strings.Join(scan[:2], ""), func(t *testing.T) {
			results := make(map[string]string)
			for _, n := range []string{"1", "4", "8"} {
				var out strings.Builder
				args := withFast(append(append([]string{}, scan...), "-parallel", n)...)
				if err := run(args, &out); err != nil {
					t.Fatalf("%v -parallel %s: %v", scan, n, err)
				}
				results[n] = out.String()
			}
			if !strings.Contains(results["1"], "failing rows") {
				t.Fatalf("unexpected report shape:\n%s", results["1"])
			}
			for _, n := range []string{"4", "8"} {
				if results[n] != results["1"] {
					t.Errorf("%v -parallel %s output differs from -parallel 1:\n%q\nvs\n%q",
						scan, n, results[n], results["1"])
				}
			}
		})
	}
}

func TestBadParallelFlag(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-allfail", "-parallel", "0"), &out); err == nil {
		t.Error("-parallel 0 accepted")
	}
}
