package main

import (
	"strings"
	"testing"
)

// TestAllFailParallelInvariant pins the -parallel contract for the
// row scan: the ALL FAIL fraction is a pure per-row predicate, so the
// report must be byte-identical for any worker count.
func TestAllFailParallelInvariant(t *testing.T) {
	results := make(map[string]string)
	for _, n := range []string{"1", "4", "8"} {
		var out strings.Builder
		if err := run(withFast("-allfail", "-parallel", n), &out); err != nil {
			t.Fatalf("-allfail -parallel %s: %v", n, err)
		}
		results[n] = out.String()
	}
	for _, n := range []string{"4", "8"} {
		if results[n] != results["1"] {
			t.Errorf("-parallel %s output differs from -parallel 1:\n%q\nvs\n%q",
				n, results[n], results["1"])
		}
	}
}

func TestBadParallelFlag(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-allfail", "-parallel", "0"), &out); err == nil {
		t.Error("-parallel 0 accepted")
	}
}
