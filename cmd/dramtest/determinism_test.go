package main

import (
	"strings"
	"testing"
)

// TestAllFailParallelInvariant pins the -parallel contract for the
// row scan: the ALL FAIL fraction is a pure per-row predicate, so the
// report must be byte-identical for any worker count.
func TestAllFailParallelInvariant(t *testing.T) {
	results := make(map[string]string)
	for _, n := range []string{"1", "4", "8"} {
		var out strings.Builder
		if err := run(withFast("-allfail", "-parallel", n), &out); err != nil {
			t.Fatalf("-allfail -parallel %s: %v", n, err)
		}
		results[n] = out.String()
	}
	for _, n := range []string{"4", "8"} {
		if results[n] != results["1"] {
			t.Errorf("-parallel %s output differs from -parallel 1:\n%q\nvs\n%q",
				n, results[n], results["1"])
		}
	}
}

// TestReadBackParallelInvariant pins the -parallel contract for the
// pattern and content read-back scans: ReadBack evaluates against
// frozen content and commits flips in a sequential pass, so the full
// failure report must be byte-identical for any worker count.
func TestReadBackParallelInvariant(t *testing.T) {
	scans := [][]string{
		{"-pattern", "checker-0", "-idle", "656"},
		{"-pattern", "rowstripe-0", "-idle", "656"},
		{"-content", "mcf", "-idle", "656"},
	}
	for _, scan := range scans {
		scan := scan
		t.Run(strings.Join(scan[:2], ""), func(t *testing.T) {
			results := make(map[string]string)
			for _, n := range []string{"1", "4", "8"} {
				var out strings.Builder
				args := withFast(append(append([]string{}, scan...), "-parallel", n)...)
				if err := run(args, &out); err != nil {
					t.Fatalf("%v -parallel %s: %v", scan, n, err)
				}
				results[n] = out.String()
			}
			if !strings.Contains(results["1"], "failing rows") {
				t.Fatalf("unexpected report shape:\n%s", results["1"])
			}
			for _, n := range []string{"4", "8"} {
				if results[n] != results["1"] {
					t.Errorf("%v -parallel %s output differs from -parallel 1:\n%q\nvs\n%q",
						scan, n, results[n], results["1"])
				}
			}
		})
	}
}

// TestMappingParallelInvariant extends the -parallel contract to every
// vendor address mapping: the read-back scan must be byte-identical for
// any worker count no matter how the mapping relocates rows, and the
// mappings must actually disagree with each other (different physical
// neighbourhoods → different failure sets).
func TestMappingParallelInvariant(t *testing.T) {
	byMapping := make(map[string]string)
	for _, m := range []string{"default", "gray", "linear", "mirror"} {
		m := m
		t.Run(m, func(t *testing.T) {
			results := make(map[string]string)
			for _, n := range []string{"1", "4", "8"} {
				var out strings.Builder
				args := withFast("-pattern", "checker-0", "-idle", "656", "-mapping", m, "-parallel", n)
				if err := run(args, &out); err != nil {
					t.Fatalf("-mapping %s -parallel %s: %v", m, n, err)
				}
				results[n] = out.String()
			}
			if !strings.Contains(results["1"], "failing rows") {
				t.Fatalf("unexpected report shape:\n%s", results["1"])
			}
			for _, n := range []string{"4", "8"} {
				if results[n] != results["1"] {
					t.Errorf("-mapping %s -parallel %s output differs from -parallel 1", m, n)
				}
			}
			byMapping[m] = results["1"]
		})
	}
	if byMapping["default"] != "" && byMapping["gray"] != "" &&
		byMapping["default"] == byMapping["gray"] {
		t.Error("default and gray mappings produced identical failure reports")
	}
}

func TestUnknownMappingRejected(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-allfail", "-mapping", "zigzag"), &out); err == nil {
		t.Error("-mapping zigzag accepted")
	}
}

func TestBadParallelFlag(t *testing.T) {
	var out strings.Builder
	if err := run(withFast("-allfail", "-parallel", "0"), &out); err == nil {
		t.Error("-parallel 0 accepted")
	}
}
