package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeDaemon emulates memcond's cache contract: the first request per
// body is a miss that fixes the bytes, every later one is a hit
// serving the same bytes. It also speaks the daemon's revalidation
// dialect (ETag = key, If-None-Match → 304) and can label hits as
// disk-tier.
type fakeDaemon struct {
	mu      sync.Mutex
	entries map[string][]byte
	// corruptHits makes hit responses differ from the stored bytes, to
	// prove memload catches determinism violations.
	corruptHits bool
	// diskHits labels every hit as served from the disk tier.
	diskHits bool
}

func (f *fakeDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Seed  int     `json:"seed"`
		Scale float64 `json:"scale"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	keyRaw := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%v", r.URL.Path, req.Seed, req.Scale)))
	key := hex.EncodeToString(keyRaw[:])

	f.mu.Lock()
	data, ok := f.entries[key]
	if !ok {
		data = []byte(fmt.Sprintf(`{"report":"%s","seed":%d}`, r.URL.Path, req.Seed))
		f.entries[key] = data
		f.mu.Unlock()
		w.Header().Set("ETag", `"`+key+`"`)
		w.Header().Set("X-Memcond-Cache", "miss")
		w.Header().Set("X-Memcond-Key", key)
		w.Write(data)
		return
	}
	f.mu.Unlock()
	tier := "hit"
	if f.diskHits {
		tier = "disk"
	}
	if strings.Contains(r.Header.Get("If-None-Match"), `"`+key+`"`) {
		w.Header().Set("ETag", `"`+key+`"`)
		w.Header().Set("X-Memcond-Cache", tier)
		w.Header().Set("X-Memcond-Key", key)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if f.corruptHits {
		data = append([]byte(nil), data...)
		data[0] = '['
	}
	w.Header().Set("ETag", `"`+key+`"`)
	w.Header().Set("X-Memcond-Cache", tier)
	w.Header().Set("X-Memcond-Key", key)
	w.Write(data)
}

func testConfig(base string) *loadConfig {
	return &loadConfig{
		Base:      base,
		IDs:       []string{"fig4", "fig6"},
		Requests:  60,
		Workers:   8,
		Seeds:     3,
		Scale:     0.05,
		SimTimeNs: 200000,
		Mixes:     3,
		Timeout:   5 * time.Second,
	}
}

func TestRunLoadCountsOutcomes(t *testing.T) {
	fd := &fakeDaemon{entries: make(map[string][]byte)}
	ts := httptest.NewServer(fd)
	defer ts.Close()

	sum, err := runLoad(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 60 || sum.Errors != 0 {
		t.Fatalf("total %d errors %d, want 60/0", sum.Total, sum.Errors)
	}
	// 2 ids x 3 seeds = 6 distinct keys; one miss each, rest hits.
	if sum.Keys != 6 {
		t.Errorf("keys = %d, want 6", sum.Keys)
	}
	if sum.Miss != 6 || sum.Hits != 54 {
		t.Errorf("outcomes = %d miss %d hit, want 6/54", sum.Miss, sum.Hits)
	}
	if sum.IdentityViolations != 0 {
		t.Errorf("identity violations = %d, want 0", sum.IdentityViolations)
	}
	if sum.Statuses[http.StatusOK] != 60 {
		t.Errorf("statuses = %v", sum.Statuses)
	}
	if sum.Max < sum.Min || sum.P95 < sum.P50 || sum.P99 < sum.P95 {
		t.Errorf("latency ordering broken: %+v", sum)
	}
}

// TestRunLoadCountsDiskTier attributes X-Memcond-Cache: disk responses
// to their own bucket.
func TestRunLoadCountsDiskTier(t *testing.T) {
	fd := &fakeDaemon{entries: make(map[string][]byte), diskHits: true}
	ts := httptest.NewServer(fd)
	defer ts.Close()

	sum, err := runLoad(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Miss != 6 || sum.Disk != 54 || sum.Hits != 0 {
		t.Errorf("outcomes = %d miss %d disk %d hit, want 6/54/0", sum.Miss, sum.Disk, sum.Hits)
	}
}

// TestRunLoadETagMode revalidates repeats with If-None-Match: after
// each shape's first 200, later requests for it are answered 304 and
// counted as successes in the not-modified bucket.
func TestRunLoadETagMode(t *testing.T) {
	fd := &fakeDaemon{entries: make(map[string][]byte)}
	ts := httptest.NewServer(fd)
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.Workers = 1 // serialize so every repeat already holds the ETag
	cfg.ETag = true
	sum, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("errors = %d: %v", sum.Errors, sum.Statuses)
	}
	if sum.NotModified != 54 || sum.Statuses[http.StatusNotModified] != 54 {
		t.Errorf("not modified = %d (statuses %v), want 54", sum.NotModified, sum.Statuses)
	}
	if sum.Keys != 6 || sum.IdentityViolations != 0 {
		t.Errorf("keys %d violations %d, want 6/0", sum.Keys, sum.IdentityViolations)
	}
}

// TestCheckDigests pins the cross-restart identity check: the first
// run seeds the file, an identical run verifies clean, and a drifted
// daemon is caught.
func TestCheckDigests(t *testing.T) {
	fd := &fakeDaemon{entries: make(map[string][]byte)}
	ts := httptest.NewServer(fd)
	defer ts.Close()
	path := filepath.Join(t.TempDir(), "digests.txt")

	sum, err := runLoad(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.checkDigests(path); err != nil {
		t.Fatal(err)
	}
	if sum.DigestMismatches != 0 {
		t.Fatalf("seeding run reported %d mismatches", sum.DigestMismatches)
	}
	seeded, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(string(seeded)), "\n")); n != 6 {
		t.Fatalf("digests file has %d lines, want 6", n)
	}

	// Same daemon again: clean.
	sum2, err := runLoad(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if err := sum2.checkDigests(path); err != nil {
		t.Fatal(err)
	}
	if sum2.DigestMismatches != 0 {
		t.Errorf("identical rerun reported %d mismatches", sum2.DigestMismatches)
	}

	// A "restarted" daemon that recomputed different bytes: caught.
	fd2 := &fakeDaemon{entries: make(map[string][]byte)}
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		fd2.ServeHTTP(w, r2)
	}))
	defer ts2.Close()
	cfg := testConfig(ts2.URL)
	cfg.Scale = 0.05 // same request shapes...
	sum3, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ...but poison the observed hashes to emulate drifted bytes.
	for k := range sum3.byKey {
		h := sum3.byKey[k]
		h[0] ^= 0xff
		sum3.byKey[k] = h
	}
	if err := sum3.checkDigests(path); err != nil {
		t.Fatal(err)
	}
	if sum3.DigestMismatches != 6 {
		t.Errorf("drifted daemon produced %d mismatches, want 6", sum3.DigestMismatches)
	}
}

func TestRunLoadDetectsIdentityViolation(t *testing.T) {
	fd := &fakeDaemon{entries: make(map[string][]byte), corruptHits: true}
	ts := httptest.NewServer(fd)
	defer ts.Close()

	sum, err := runLoad(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if sum.IdentityViolations == 0 {
		t.Error("corrupted hit bytes went undetected")
	}
}

func TestRunLoadCountsFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.Requests, cfg.Workers = 10, 2
	sum, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 10 || sum.Statuses[http.StatusServiceUnavailable] != 10 {
		t.Errorf("errors %d statuses %v, want 10 x 503", sum.Errors, sum.Statuses)
	}
}

func TestRunLoadValidatesConfig(t *testing.T) {
	if _, err := runLoad(&loadConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}
