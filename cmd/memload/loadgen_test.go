package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeDaemon emulates memcond's cache contract: the first request per
// body is a miss that fixes the bytes, every later one is a hit
// serving the same bytes.
type fakeDaemon struct {
	mu      sync.Mutex
	entries map[string][]byte
	// corruptHits makes hit responses differ from the stored bytes, to
	// prove memload catches determinism violations.
	corruptHits bool
}

func (f *fakeDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Seed  int     `json:"seed"`
		Scale float64 `json:"scale"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	keyRaw := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%v", r.URL.Path, req.Seed, req.Scale)))
	key := hex.EncodeToString(keyRaw[:])

	f.mu.Lock()
	data, ok := f.entries[key]
	if !ok {
		data = []byte(fmt.Sprintf(`{"report":"%s","seed":%d}`, r.URL.Path, req.Seed))
		f.entries[key] = data
		f.mu.Unlock()
		w.Header().Set("X-Memcond-Cache", "miss")
		w.Header().Set("X-Memcond-Key", key)
		w.Write(data)
		return
	}
	f.mu.Unlock()
	if f.corruptHits {
		data = append([]byte(nil), data...)
		data[0] = '['
	}
	w.Header().Set("X-Memcond-Cache", "hit")
	w.Header().Set("X-Memcond-Key", key)
	w.Write(data)
}

func testConfig(base string) loadConfig {
	return loadConfig{
		Base:      base,
		IDs:       []string{"fig4", "fig6"},
		Requests:  60,
		Workers:   8,
		Seeds:     3,
		Scale:     0.05,
		SimTimeNs: 200000,
		Mixes:     3,
		Timeout:   5 * time.Second,
	}
}

func TestRunLoadCountsOutcomes(t *testing.T) {
	fd := &fakeDaemon{entries: make(map[string][]byte)}
	ts := httptest.NewServer(fd)
	defer ts.Close()

	sum, err := runLoad(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 60 || sum.Errors != 0 {
		t.Fatalf("total %d errors %d, want 60/0", sum.Total, sum.Errors)
	}
	// 2 ids x 3 seeds = 6 distinct keys; one miss each, rest hits.
	if sum.Keys != 6 {
		t.Errorf("keys = %d, want 6", sum.Keys)
	}
	if sum.Misses != 6 || sum.Hits != 54 {
		t.Errorf("outcomes = %d miss %d hit, want 6/54", sum.Misses, sum.Hits)
	}
	if sum.IdentityViolations != 0 {
		t.Errorf("identity violations = %d, want 0", sum.IdentityViolations)
	}
	if sum.Statuses[http.StatusOK] != 60 {
		t.Errorf("statuses = %v", sum.Statuses)
	}
	if sum.Max < sum.Min || sum.P95 < sum.P50 {
		t.Errorf("latency ordering broken: %+v", sum)
	}
}

func TestRunLoadDetectsIdentityViolation(t *testing.T) {
	fd := &fakeDaemon{entries: make(map[string][]byte), corruptHits: true}
	ts := httptest.NewServer(fd)
	defer ts.Close()

	sum, err := runLoad(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if sum.IdentityViolations == 0 {
		t.Error("corrupted hit bytes went undetected")
	}
}

func TestRunLoadCountsFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.Requests, cfg.Workers = 10, 2
	sum, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 10 || sum.Statuses[http.StatusServiceUnavailable] != 10 {
		t.Errorf("errors %d statuses %v, want 10 x 503", sum.Errors, sum.Statuses)
	}
}

func TestRunLoadValidatesConfig(t *testing.T) {
	if _, err := runLoad(loadConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}
