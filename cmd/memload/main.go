// Command memload drives a memcond daemon with concurrent experiment
// requests and reports the cache behaviour it observed: hit/miss/shared
// outcomes, status codes, latency percentiles and — the load generator's
// real job — whether every response for a given cache key was
// byte-identical. The daemon's whole premise is that a content-addressed
// cache over deterministic experiments serves exact answers; memload is
// the client-side check of that premise under concurrency.
//
// Requests are spread round-robin over the requested experiment ids and
// a small pool of seeds, so a run with -n much larger than ids×seeds
// exercises all three cache outcomes: the first arrival per key is a
// miss, concurrent arrivals share its flight, and later arrivals hit.
//
// Responses are attributed to cache tiers from the daemon's
// X-Memcond-Cache header (hit, disk, miss, shared) plus 304 Not
// Modified as its own bucket. -etag remembers each key's ETag and
// revalidates with If-None-Match on repeats; -digests FILE extends
// byte-identity across daemon restarts (first run seeds the file,
// later runs verify against it).
//
// Usage:
//
//	memload -addr http://127.0.0.1:8080 -exp fig4,fig6 [-n 2000] [-c 1000]
//	        [-seeds 2] [-scale 0.05] [-simtime 200000] [-mixes 3]
//	        [-min-hits 1] [-min-disk 1] [-etag] [-digests FILE]
//	        [-json] [-timeout 2m]
//
// The exit status is non-zero when any request failed, when two
// responses for one key differed (a determinism violation, within this
// run or against -digests), or when fewer than -min-hits memory hits /
// -min-disk disk hits were observed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "memcond base URL (host:port is accepted)")
		exp     = flag.String("exp", "fig4", "comma-separated experiment ids to request")
		n       = flag.Int("n", 100, "total requests to send")
		c       = flag.Int("c", 10, "concurrent requests in flight")
		seeds   = flag.Int("seeds", 1, "distinct seeds to spread requests over (ids x seeds = distinct cache keys)")
		scale   = flag.Float64("scale", 0.05, "scale knob sent with each request")
		simtime = flag.Int64("simtime", 200000, "simulated nanoseconds sent with each request")
		mixes   = flag.Int("mixes", 3, "content mixes sent with each request")
		version = flag.String("report-version", "", "report version sent with each request (empty = server default)")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
		minHits = flag.Int64("min-hits", 0, "fail unless at least this many memory-tier hits were observed")
		minDisk = flag.Int64("min-disk", 0, "fail unless at least this many disk-tier hits were observed")
		etag    = flag.Bool("etag", false, "remember ETags and revalidate repeats with If-None-Match")
		digests = flag.String("digests", "", "persist per-key body digests to this file and verify repeats against it")
		asJSON  = flag.Bool("json", false, "print the summary as one JSON object instead of the human form")
		showMx  = flag.Bool("show-metrics", false, "fetch /metrics after the run and print the memcond_* family")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}

	cfg := &loadConfig{
		Base:      strings.TrimRight(base, "/"),
		IDs:       ids,
		Requests:  *n,
		Workers:   *c,
		Seeds:     *seeds,
		Scale:     *scale,
		SimTimeNs: *simtime,
		Mixes:     *mixes,
		Version:   *version,
		Timeout:   *timeout,
		ETag:      *etag,
	}
	sum, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memload: %v\n", err)
		os.Exit(1)
	}
	if *digests != "" {
		if err := sum.checkDigests(*digests); err != nil {
			fmt.Fprintf(os.Stderr, "memload: %v\n", err)
			os.Exit(1)
		}
	}
	if *asJSON {
		if err := sum.writeJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "memload: %v\n", err)
			os.Exit(1)
		}
	} else {
		sum.write(os.Stdout)
	}
	if *showMx {
		if err := printServerMetrics(os.Stdout, cfg.Base); err != nil {
			fmt.Fprintf(os.Stderr, "memload: fetching /metrics: %v\n", err)
		}
	}

	switch {
	case sum.IdentityViolations > 0:
		fmt.Fprintf(os.Stderr, "memload: FAIL: %d responses broke byte-identity for their cache key\n", sum.IdentityViolations)
		os.Exit(1)
	case sum.DigestMismatches > 0:
		fmt.Fprintf(os.Stderr, "memload: FAIL: %d keys drifted from the digests file %s\n", sum.DigestMismatches, *digests)
		os.Exit(1)
	case sum.Errors > 0:
		fmt.Fprintf(os.Stderr, "memload: FAIL: %d requests failed\n", sum.Errors)
		os.Exit(1)
	case sum.Hits < *minHits:
		fmt.Fprintf(os.Stderr, "memload: FAIL: %d cache hits, need at least %d\n", sum.Hits, *minHits)
		os.Exit(1)
	case sum.Disk < *minDisk:
		fmt.Fprintf(os.Stderr, "memload: FAIL: %d disk hits, need at least %d\n", sum.Disk, *minDisk)
		os.Exit(1)
	}
}
