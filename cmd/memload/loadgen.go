package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadConfig describes one load run.
type loadConfig struct {
	Base      string   // daemon base URL, no trailing slash
	IDs       []string // experiment ids, round-robined
	Requests  int      // total requests
	Workers   int      // concurrency
	Seeds     int      // distinct seeds per id
	Scale     float64
	SimTimeNs int64
	Mixes     int
	Version   string
	Timeout   time.Duration
}

// outcome is one request's observation.
type outcome struct {
	status  int
	cache   string // hit | miss | shared | "" on transport error
	key     string
	hash    [32]byte
	latency time.Duration
	err     error
}

// summary aggregates a load run.
type summary struct {
	Total, Errors        int64
	Hits, Misses, Shared int64
	Statuses             map[int]int64
	Keys                 int
	IdentityViolations   int64
	Elapsed              time.Duration
	Min, P50, P95, Max   time.Duration
	RPS                  float64
}

// runLoad fires cfg.Requests POSTs at the daemon with cfg.Workers in
// flight and verifies that every response observed for one cache key
// carried identical bytes.
func runLoad(cfg loadConfig) (*summary, error) {
	if cfg.Requests < 1 || cfg.Workers < 1 || len(cfg.IDs) == 0 {
		return nil, fmt.Errorf("need at least one request, one worker and one experiment id")
	}
	if cfg.Seeds < 1 {
		cfg.Seeds = 1
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers,
			MaxIdleConnsPerHost: cfg.Workers,
			MaxConnsPerHost:     0, // one live connection per in-flight request
		},
	}

	jobs := make(chan int)
	results := make(chan outcome, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- cfg.fire(client, i)
			}
		}()
	}
	go func() {
		for i := 0; i < cfg.Requests; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	sum := &summary{Statuses: make(map[int]int64)}
	byKey := make(map[string][32]byte)
	latencies := make([]time.Duration, 0, cfg.Requests)
	for r := range results {
		sum.Total++
		if r.err != nil || r.status != http.StatusOK {
			sum.Errors++
			if r.status != 0 {
				sum.Statuses[r.status]++
			}
			continue
		}
		sum.Statuses[r.status]++
		latencies = append(latencies, r.latency)
		switch r.cache {
		case "hit":
			sum.Hits++
		case "miss":
			sum.Misses++
		case "shared":
			sum.Shared++
		}
		if r.key != "" {
			if prev, ok := byKey[r.key]; ok {
				if prev != r.hash {
					sum.IdentityViolations++
				}
			} else {
				byKey[r.key] = r.hash
			}
		}
	}
	sum.Elapsed = time.Since(start)
	sum.Keys = len(byKey)
	if sum.Elapsed > 0 {
		sum.RPS = float64(sum.Total) / sum.Elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		sum.Min = latencies[0]
		sum.Max = latencies[len(latencies)-1]
		sum.P50 = latencies[len(latencies)/2]
		sum.P95 = latencies[len(latencies)*95/100]
	}
	return sum, nil
}

// fire sends request i: ids round-robin, seeds cycling above them, so
// consecutive requests touch different keys and each key recurs.
func (cfg loadConfig) fire(client *http.Client, i int) outcome {
	id := cfg.IDs[i%len(cfg.IDs)]
	seed := (i / len(cfg.IDs)) % cfg.Seeds
	body := fmt.Sprintf(`{"seed":%d,"scale":%v,"simtime_ns":%d,"mixes":%d`,
		seed, cfg.Scale, cfg.SimTimeNs, cfg.Mixes)
	if cfg.Version != "" {
		body += fmt.Sprintf(`,"version":%q`, cfg.Version)
	}
	body += "}"

	start := time.Now()
	resp, err := client.Post(cfg.Base+"/v1/experiments/"+id, "application/json", strings.NewReader(body))
	if err != nil {
		return outcome{err: err, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	lat := time.Since(start)
	if err != nil {
		return outcome{status: resp.StatusCode, err: err, latency: lat}
	}
	return outcome{
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Memcond-Cache"),
		key:     resp.Header.Get("X-Memcond-Key"),
		hash:    sha256.Sum256(data),
		latency: lat,
	}
}

// printServerMetrics fetches the daemon's Prometheus exposition and
// prints the memcond_* counter lines (skipping comments), so the demo
// can show the server-side view without needing curl.
func printServerMetrics(w io.Writer, base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "server     /metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "memcond_") && !strings.Contains(line, "_bucket{") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	return nil
}

// write renders the human summary.
func (s *summary) write(w io.Writer) {
	fmt.Fprintf(w, "requests   %d in %v (%.0f req/s)\n", s.Total, s.Elapsed.Round(time.Millisecond), s.RPS)
	fmt.Fprintf(w, "outcomes   %d hit, %d miss, %d shared, %d errors\n", s.Hits, s.Misses, s.Shared, s.Errors)
	var codes []int
	for c := range s.Statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var parts []string
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d×%d", c, s.Statuses[c]))
	}
	fmt.Fprintf(w, "statuses   %s\n", strings.Join(parts, " "))
	fmt.Fprintf(w, "keys       %d distinct, %d identity violations\n", s.Keys, s.IdentityViolations)
	fmt.Fprintf(w, "latency    min %v  p50 %v  p95 %v  max %v\n",
		s.Min.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
