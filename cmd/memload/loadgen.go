package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadConfig describes one load run.
type loadConfig struct {
	Base      string   // daemon base URL, no trailing slash
	IDs       []string // experiment ids, round-robined
	Requests  int      // total requests
	Workers   int      // concurrency
	Seeds     int      // distinct seeds per id
	Scale     float64
	SimTimeNs int64
	Mixes     int
	Version   string
	Timeout   time.Duration
	// ETag remembers each key's entity tag and sends If-None-Match on
	// repeat requests, exercising the daemon's 304 path.
	ETag bool

	// etags maps "id|seed" to the last ETag seen for that request shape.
	etags sync.Map
}

// outcome is one request's observation.
type outcome struct {
	status  int
	cache   string // hit | disk | miss | shared | "" on transport error
	key     string
	hash    [32]byte
	hasBody bool // false for 304 (nothing to hash)
	latency time.Duration
	err     error
}

// summary aggregates a load run.
type summary struct {
	Total, Errors            int64
	Hits, Disk, Miss, Shared int64
	NotModified              int64
	Statuses                 map[int]int64
	Keys                     int
	IdentityViolations       int64
	DigestMismatches         int64
	Elapsed                  time.Duration
	Min, P50, P95, P99, Max  time.Duration
	RPS                      float64

	byKey map[string][32]byte
}

// runLoad fires cfg.Requests POSTs at the daemon with cfg.Workers in
// flight and verifies that every response observed for one cache key
// carried identical bytes.
func runLoad(cfg *loadConfig) (*summary, error) {
	if cfg.Requests < 1 || cfg.Workers < 1 || len(cfg.IDs) == 0 {
		return nil, fmt.Errorf("need at least one request, one worker and one experiment id")
	}
	if cfg.Seeds < 1 {
		cfg.Seeds = 1
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers,
			MaxIdleConnsPerHost: cfg.Workers,
			MaxConnsPerHost:     0, // one live connection per in-flight request
		},
	}

	jobs := make(chan int)
	results := make(chan outcome, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- cfg.fire(client, i)
			}
		}()
	}
	go func() {
		for i := 0; i < cfg.Requests; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	sum := &summary{Statuses: make(map[int]int64), byKey: make(map[string][32]byte)}
	latencies := make([]time.Duration, 0, cfg.Requests)
	for r := range results {
		sum.Total++
		if r.err != nil || (r.status != http.StatusOK && r.status != http.StatusNotModified) {
			sum.Errors++
			if r.status != 0 {
				sum.Statuses[r.status]++
			}
			continue
		}
		sum.Statuses[r.status]++
		latencies = append(latencies, r.latency)
		if r.status == http.StatusNotModified {
			// The daemon confirmed the bytes we already hold; there is no
			// body to hash, and the tier header says which tier vouched.
			sum.NotModified++
		}
		switch r.cache {
		case "hit":
			sum.Hits++
		case "disk":
			sum.Disk++
		case "miss":
			sum.Miss++
		case "shared":
			sum.Shared++
		}
		if r.key != "" && r.hasBody {
			if prev, ok := sum.byKey[r.key]; ok {
				if prev != r.hash {
					sum.IdentityViolations++
				}
			} else {
				sum.byKey[r.key] = r.hash
			}
		}
	}
	sum.Elapsed = time.Since(start)
	sum.Keys = len(sum.byKey)
	if sum.Elapsed > 0 {
		sum.RPS = float64(sum.Total) / sum.Elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		sum.Min = latencies[0]
		sum.Max = latencies[len(latencies)-1]
		sum.P50 = latencies[len(latencies)/2]
		sum.P95 = latencies[len(latencies)*95/100]
		sum.P99 = latencies[len(latencies)*99/100]
	}
	return sum, nil
}

// fire sends request i: ids round-robin, seeds cycling above them, so
// consecutive requests touch different keys and each key recurs. In
// -etag mode a repeat request for a shape whose ETag we already hold
// sends If-None-Match and accepts 304 as the answer.
func (cfg *loadConfig) fire(client *http.Client, i int) outcome {
	id := cfg.IDs[i%len(cfg.IDs)]
	seed := (i / len(cfg.IDs)) % cfg.Seeds
	body := fmt.Sprintf(`{"seed":%d,"scale":%v,"simtime_ns":%d,"mixes":%d`,
		seed, cfg.Scale, cfg.SimTimeNs, cfg.Mixes)
	if cfg.Version != "" {
		body += fmt.Sprintf(`,"version":%q`, cfg.Version)
	}
	body += "}"
	shape := fmt.Sprintf("%s|%d", id, seed)

	req, err := http.NewRequest("POST", cfg.Base+"/v1/experiments/"+id, strings.NewReader(body))
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.ETag {
		if tag, ok := cfg.etags.Load(shape); ok {
			req.Header.Set("If-None-Match", tag.(string))
		}
	}

	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return outcome{err: err, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	lat := time.Since(start)
	if err != nil {
		return outcome{status: resp.StatusCode, err: err, latency: lat}
	}
	if cfg.ETag && resp.StatusCode == http.StatusOK {
		if tag := resp.Header.Get("ETag"); tag != "" {
			cfg.etags.Store(shape, tag)
		}
	}
	return outcome{
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Memcond-Cache"),
		key:     resp.Header.Get("X-Memcond-Key"),
		hash:    sha256.Sum256(data),
		hasBody: resp.StatusCode == http.StatusOK,
		latency: lat,
	}
}

// printServerMetrics fetches the daemon's Prometheus exposition and
// prints the memcond_* counter lines (skipping comments), so the demo
// can show the server-side view without needing curl.
func printServerMetrics(w io.Writer, base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "server     /metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "memcond_") && !strings.Contains(line, "_bucket{") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	return nil
}

// checkDigests compares this run's per-key body hashes against a
// digests file from an earlier run — the cross-restart byte-identity
// check. Keys absent from the file are appended, so the first run
// seeds it and later runs (against a restarted daemon) verify it.
func (s *summary) checkDigests(path string) error {
	known := make(map[string]string)
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			key, digest, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
			if ok {
				known[key] = digest
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return fmt.Errorf("reading digests file: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for key, hash := range s.byKey {
		got := hex.EncodeToString(hash[:])
		if prev, ok := known[key]; ok {
			if prev != got {
				s.DigestMismatches++
			}
		} else {
			known[key] = got
		}
	}
	keys := make([]string, 0, len(known))
	for k := range known {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s\n", k, known[k])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// writeJSON renders the machine summary (scripts/bench.sh consumes it).
func (s *summary) writeJSON(w io.Writer) error {
	doc := map[string]any{
		"requests":            s.Total,
		"errors":              s.Errors,
		"hits":                s.Hits,
		"disk_hits":           s.Disk,
		"misses":              s.Miss,
		"shared":              s.Shared,
		"not_modified":        s.NotModified,
		"keys":                s.Keys,
		"identity_violations": s.IdentityViolations,
		"digest_mismatches":   s.DigestMismatches,
		"elapsed_ms":          float64(s.Elapsed.Microseconds()) / 1000,
		"rps":                 s.RPS,
		"latency_ms": map[string]float64{
			"min": float64(s.Min.Microseconds()) / 1000,
			"p50": float64(s.P50.Microseconds()) / 1000,
			"p95": float64(s.P95.Microseconds()) / 1000,
			"p99": float64(s.P99.Microseconds()) / 1000,
			"max": float64(s.Max.Microseconds()) / 1000,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// write renders the human summary.
func (s *summary) write(w io.Writer) {
	fmt.Fprintf(w, "requests   %d in %v (%.0f req/s)\n", s.Total, s.Elapsed.Round(time.Millisecond), s.RPS)
	fmt.Fprintf(w, "outcomes   %d hit, %d disk, %d miss, %d shared, %d not-modified, %d errors\n",
		s.Hits, s.Disk, s.Miss, s.Shared, s.NotModified, s.Errors)
	var codes []int
	for c := range s.Statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var parts []string
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d×%d", c, s.Statuses[c]))
	}
	fmt.Fprintf(w, "statuses   %s\n", strings.Join(parts, " "))
	fmt.Fprintf(w, "keys       %d distinct, %d identity violations, %d digest mismatches\n",
		s.Keys, s.IdentityViolations, s.DigestMismatches)
	fmt.Fprintf(w, "latency    min %v  p50 %v  p95 %v  p99 %v  max %v\n",
		s.Min.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
