// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the hot substrate paths.
//
// Figure/table benches execute the corresponding experiment at reduced
// scale and report the headline quantity as a custom metric, so a bench
// run regenerates the paper's rows/series shape alongside timing.
package memcon

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"memcon/internal/core"
	"memcon/internal/costmodel"
	"memcon/internal/ddr3"
	"memcon/internal/disturb"
	"memcon/internal/dram"
	"memcon/internal/ecc"
	"memcon/internal/experiments"
	"memcon/internal/faults"
	"memcon/internal/fleet"
	"memcon/internal/memctrl"
	"memcon/internal/pril"
	"memcon/internal/softmc"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

// benchOpts keeps per-iteration cost bounded while preserving the
// statistical shape of each experiment.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.05, Seed: 42, SimTimeNs: 200_000, Mixes: 4}
}

func runExperiment(b *testing.B, id string) interface{ String() string } {
	b.Helper()
	var out interface{ String() string }
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		out = res
	}
	return out
}

func BenchmarkFig3PatternSensitivity(b *testing.B) {
	out := runExperiment(b, "fig3").(*experiments.Fig3Result)
	b.ReportMetric(float64(out.UniqueCells), "failing-cells")
	b.ReportMetric(float64(out.ConditionalCells), "conditional-cells")
}

func BenchmarkFig4ContentFailures(b *testing.B) {
	out := runExperiment(b, "fig4").(*experiments.Fig4Result)
	b.ReportMetric(100*out.AllFail, "allfail-%rows")
	b.ReportMetric(out.RatioMin, "ratio-min")
	b.ReportMetric(out.RatioMax, "ratio-max")
}

func BenchmarkFig6MinWriteInterval(b *testing.B) {
	out := runExperiment(b, "fig6").(*experiments.Fig6Result)
	b.ReportMetric(float64(out.Configs[0].MinWriteInterval)/1e6, "readcmp-mwi-ms")
	b.ReportMetric(float64(out.Configs[1].MinWriteInterval)/1e6, "copycmp-mwi-ms")
}

func BenchmarkFig7IntervalDistribution(b *testing.B) {
	out := runExperiment(b, "fig7").(*experiments.Fig7Result)
	b.ReportMetric(100*out.Apps[0].Under1ms, "under1ms-%")
}

func BenchmarkFig8ParetoFit(b *testing.B) {
	out := runExperiment(b, "fig8").(*experiments.Fig8Result)
	b.ReportMetric(out.Apps[0].Fit.R2, "r2")
	b.ReportMetric(out.Apps[0].Fit.Dist.Alpha, "alpha")
}

func BenchmarkFig9LongIntervalTime(b *testing.B) {
	out := runExperiment(b, "fig9").(*experiments.Fig9Result)
	b.ReportMetric(100*out.Average, "long-time-%")
}

func BenchmarkFig11RILvsCIL(b *testing.B) {
	out := runExperiment(b, "fig11").(*experiments.Fig11Result)
	// Report the average conditional at CIL 1024 ms across apps.
	var sum float64
	idx := 0
	for i, c := range out.CILs {
		if c == 1024 {
			idx = i
		}
	}
	for a := range out.Apps {
		sum += out.P[a][idx]
	}
	b.ReportMetric(sum/float64(len(out.Apps)), "p-ril-at-1024")
}

func BenchmarkFig12Coverage(b *testing.B) {
	out := runExperiment(b, "fig12").(*experiments.Fig12Result)
	var sum float64
	idx := 0
	for i, c := range out.CILs {
		if c == 1024 {
			idx = i
		}
	}
	for a := range out.Apps {
		sum += out.Coverage[a][idx]
	}
	b.ReportMetric(100*sum/float64(len(out.Apps)), "coverage-%-at-1024")
}

func BenchmarkFig14RefreshReduction(b *testing.B) {
	out := runExperiment(b, "fig14").(*experiments.Fig14Result)
	b.ReportMetric(100*out.AvgAt1024, "avg-reduction-%")
	b.ReportMetric(100*out.MinAt1024, "min-reduction-%")
	b.ReportMetric(100*out.MaxAt1024, "max-reduction-%")
}

func BenchmarkFig15Speedup(b *testing.B) {
	out := runExperiment(b, "fig15").(*experiments.Fig15Result)
	b.ReportMetric(out.Speedup(1, dram.Density32Gb, 0.75), "1core-32gb-75pct")
	b.ReportMetric(out.Speedup(4, dram.Density32Gb, 0.75), "4core-32gb-75pct")
	b.ReportMetric(out.Speedup(1, dram.Density8Gb, 0.60), "1core-8gb-60pct")
}

func BenchmarkTable3TestOverhead(b *testing.B) {
	out := runExperiment(b, "table3").(*experiments.Table3Result)
	b.ReportMetric(100*out.Loss(1, 1024), "1core-1024tests-loss-%")
	b.ReportMetric(100*out.Loss(4, 1024), "4core-1024tests-loss-%")
}

func BenchmarkFig16RefreshPolicies(b *testing.B) {
	out := runExperiment(b, "fig16").(*experiments.Fig16Result)
	b.ReportMetric(out.Speedup(1, dram.Density32Gb, "MEMCON"), "memcon-1core-32gb")
	b.ReportMetric(out.Speedup(1, dram.Density32Gb, "RAIDR"), "raidr-1core-32gb")
	b.ReportMetric(out.Speedup(1, dram.Density32Gb, "64ms"), "ideal-1core-32gb")
}

func BenchmarkFig17LoRefCoverage(b *testing.B) {
	out := runExperiment(b, "fig17").(*experiments.Fig17Result)
	b.ReportMetric(100*out.AvgAt1024, "coverage-%")
}

func BenchmarkFig18TestingTime(b *testing.B) {
	out := runExperiment(b, "fig18").(*experiments.Fig18Result)
	b.ReportMetric(100*out.AvgTestingShare, "testing-share-%")
}

func BenchmarkFig19HalvedIntervals(b *testing.B) {
	out := runExperiment(b, "fig19").(*experiments.Fig19Result)
	b.ReportMetric(out.Full[1]-out.Half[1], "delta-p-at-1024")
}

// BenchmarkParallelMixes measures the mix-simulation sweep (the
// hottest experiment path) at increasing worker counts. The workers-1
// case is the serial baseline; fig15 results are byte-identical across
// all sub-benchmarks, so the only variable is wall-clock time.
func BenchmarkParallelMixes(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			opts := benchOpts()
			opts.Workers = w
			opts.Mixes = 8
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run("fig15", opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCostModel(b *testing.B) {
	cfg := costmodel.DefaultConfig()
	var mwi dram.Nanoseconds
	for i := 0; i < b.N; i++ {
		var err error
		mwi, err = cfg.MinWriteInterval()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mwi)/1e6, "mwi-ms")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// benchTrace builds one reusable workload trace.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	app, err := workload.AppByName("Netflix")
	if err != nil {
		b.Fatal(err)
	}
	return app.Generate(42, 0.05)
}

// AblationQuantum: quantum (CIL) choice 512/1024/2048 ms.
func BenchmarkAblationQuantum(b *testing.B) {
	tr := benchTrace(b)
	for _, q := range []trace.Microseconds{512, 1024, 2048} {
		q := q
		b.Run(formatMs(q), func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Quantum = q * trace.Millisecond
				var err error
				rep, err = core.Run(tr, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rep.RefreshReduction(), "reduction-%")
		})
	}
}

// AblationTestMode: Read-and-Compare vs Copy-and-Compare.
func BenchmarkAblationTestMode(b *testing.B) {
	tr := benchTrace(b)
	for _, mode := range []costmodel.TestMode{costmodel.ReadCompare, costmodel.CopyCompare} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Mode = mode
				var err error
				rep, err = core.Run(tr, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.MinWriteInterval)/1e6, "mwi-ms")
			b.ReportMetric(rep.TestingTimeNs()/1e3, "testing-us")
		})
	}
}

// AblationBufferCap: PRIL write-buffer capacity (overflow -> HI-REF).
func BenchmarkAblationBufferCap(b *testing.B) {
	tr := benchTrace(b)
	for _, cap := range []int{0, 4000, 64, 8} {
		cap := cap
		b.Run(capName(cap), func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.BufferCap = cap
				var err error
				rep, err = core.Run(tr, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rep.RefreshReduction(), "reduction-%")
			b.ReportMetric(float64(rep.Pril.Discards), "discards")
		})
	}
}

// AblationLoRef: LO-REF interval 64/128/256 ms (longer windows amortize
// faster but risk more failures per window).
func BenchmarkAblationLoRef(b *testing.B) {
	tr := benchTrace(b)
	for _, lo := range []dram.Nanoseconds{64, 128, 256} {
		lo := lo
		b.Run(formatMs(trace.Microseconds(lo)), func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.LoRef = lo * dram.Millisecond
				var err error
				rep, err = core.Run(tr, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rep.RefreshReduction(), "reduction-%")
			b.ReportMetric(float64(rep.MinWriteInterval)/1e6, "mwi-ms")
		})
	}
}

func formatMs(v trace.Microseconds) string {
	switch v {
	case 512:
		return "512ms"
	case 1024:
		return "1024ms"
	case 2048:
		return "2048ms"
	case 64:
		return "64ms"
	case 128:
		return "128ms"
	case 256:
		return "256ms"
	default:
		return "custom"
	}
}

func capName(c int) string {
	switch c {
	case 0:
		return "unbounded"
	case 4000:
		return "paper-4000"
	case 64:
		return "tiny-64"
	case 8:
		return "starved-8"
	default:
		return "custom"
	}
}

// --- Observability overhead ---

// BenchmarkEngineObserverDisabled is the zero-cost baseline: the event
// path with no observer attached is a nil check per site and must not
// allocate. Compare against BenchmarkEngineObserverEnabled to see the
// full price of metrics aggregation.
func BenchmarkEngineObserverDisabled(b *testing.B) {
	tr := benchTrace(b)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWith(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}

// BenchmarkEngineObserverEnabled runs the same trace with the metrics
// aggregator attached, pricing the per-event counter and histogram
// updates.
func BenchmarkEngineObserverEnabled(b *testing.B) {
	tr := benchTrace(b)
	cfg := DefaultConfig()
	reg := NewRegistry()
	m := NewMetrics(reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWith(tr, cfg, WithObserver(m)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}

// --- Substrate micro-benchmarks ---

func BenchmarkPRILObserve(b *testing.B) {
	tr := benchTrace(b)
	cfg := pril.Config{Quantum: 1024 * trace.Millisecond, NumPages: tr.MaxPage() + 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pril.Run(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}

func BenchmarkFaultEvaluation(b *testing.B) {
	geom := dram.Geometry{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1, RowsPerBank: 1024, ColsPerRow: 1024, RedundantCols: 16}
	scr := dram.NewScrambler(geom, 1, nil)
	model, err := faults.NewModel(geom, scr, 1, faults.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.FailingCells(mod, dram.RowAddress{Bank: 0, Row: i % geom.RowsPerBank}, faults.CharacterizationIdle)
	}
}

// fillBenchRandom stores deterministic random content in every module
// row.
func fillBenchRandom(b *testing.B, mod *dram.Module, seed int64) {
	b.Helper()
	g := mod.Geometry()
	rng := rand.New(rand.NewSource(seed))
	buf := dram.NewRow(g.ColsPerRow)
	for bank := 0; bank < g.BanksPerChip; bank++ {
		for r := 0; r < g.RowsPerBank; r++ {
			buf.Randomize(rng)
			if err := mod.WriteRow(dram.RowAddress{Bank: bank, Row: r}, buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFailingCells prices one fault-model row query on the default
// geometry with random content — the kernel under every read-back and
// online test. scripts/bench.sh records this in BENCH_hotpath.json.
func BenchmarkFailingCells(b *testing.B) {
	geom := dram.DefaultGeometry()
	scr := dram.NewScrambler(geom, 42, nil)
	model, err := faults.NewModel(geom, scr, 42, faults.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		b.Fatal(err)
	}
	fillBenchRandom(b, mod, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.FailingCells(mod, geom.AddressOfIndex(i%geom.TotalRows()), faults.CharacterizationIdle)
	}
}

// BenchmarkFailingCellsDense prices the row query on a 20x-denser weak
// population (6.4e-3 vs the default 3.2e-4), where most rows carry
// several weak cells per 64-bit word — the regime the bit-parallel
// word kernel exists for. scripts/bench.sh records this in
// BENCH_hotpath.json alongside the sparse query.
func BenchmarkFailingCellsDense(b *testing.B) {
	geom := dram.DefaultGeometry()
	params := faults.DefaultParams()
	params.WeakCellFraction = 6.4e-3
	scr := dram.NewScrambler(geom, 42, nil)
	model, err := faults.NewModel(geom, scr, 42, params)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		b.Fatal(err)
	}
	fillBenchRandom(b, mod, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.FailingCells(mod, geom.AddressOfIndex(i%geom.TotalRows()), faults.CharacterizationIdle)
	}
}

// BenchmarkDisturbScan prices a full read-disturb sweep on the default
// geometry with random content: one AppendFailures query per victim row
// at a hammer count deep inside the population (half the victims flip),
// the kernel under the disturb-exposure census. scripts/bench.sh
// records this in BENCH_disturb.json.
func BenchmarkDisturbScan(b *testing.B) {
	geom := dram.DefaultGeometry()
	scr := dram.NewScrambler(geom, 42, nil)
	model, err := faults.NewModel(geom, scr, 42, faults.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	dm, err := disturb.NewModel(model, 42, disturb.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		b.Fatal(err)
	}
	fillBenchRandom(b, mod, 1)
	// The geometric mean of the threshold range: roughly half the victim
	// rows are past HCfirst at this hammer count.
	w := faults.RowWindow{Hammer: 22_600}
	var victims, flipped int
	buf := make([]int, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victims, flipped = 0, 0
		for bank := 0; bank < geom.BanksPerChip; bank++ {
			rows, _ := dm.VictimRows(bank)
			victims += len(rows)
			for _, r := range rows {
				buf = dm.AppendFailures(buf[:0], mod, dram.RowAddress{Bank: bank, Row: int(r)}, w)
				if len(buf) > 0 {
					flipped++
				}
			}
		}
	}
	b.ReportMetric(float64(victims), "victim-rows/op")
	b.ReportMetric(float64(flipped), "flipped-rows/op")
}

// BenchmarkReadBack prices one full-array read-back scan on the default
// geometry after a checkerboard fill and one characterization idle, at
// several worker counts (results are byte-identical at all of them).
// scripts/bench.sh records workers-1 in BENCH_hotpath.json.
func BenchmarkReadBack(b *testing.B) {
	geom := dram.DefaultGeometry()
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			scr := dram.NewScrambler(geom, 42, nil)
			model, err := faults.NewModel(geom, scr, 42, faults.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			mod, err := dram.NewModule(geom)
			if err != nil {
				b.Fatal(err)
			}
			tester, err := softmc.NewTester(mod, model)
			if err != nil {
				b.Fatal(err)
			}
			tester.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := tester.FillPattern(softmc.CheckerboardPattern(0)); err != nil {
					b.Fatal(err)
				}
				tester.Idle(faults.CharacterizationIdle)
				b.StartTimer()
				tester.ReadBack()
			}
		})
	}
}

func BenchmarkSoftMCPatternRun(b *testing.B) {
	geom := dram.Geometry{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1, RowsPerBank: 256, ColsPerRow: 512, RedundantCols: 16}
	for i := 0; i < b.N; i++ {
		scr := dram.NewScrambler(geom, 1, nil)
		model, err := faults.NewModel(geom, scr, 1, faults.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		mod, err := dram.NewModule(geom)
		if err != nil {
			b.Fatal(err)
		}
		tester, err := softmc.NewTester(mod, model)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tester.RunPattern(softmc.CheckerboardPattern(0), faults.CharacterizationIdle); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemctrlAccess(b *testing.B) {
	cfg := memctrl.DefaultConfig()
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	at := dram.Nanoseconds(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Access(at, i%8, i, i%3 == 0); err != nil {
			b.Fatal(err)
		}
		at += 50
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	app, err := workload.AppByName("BlurMotion")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tr := app.Generate(int64(i), 0.05)
		if len(tr.Events) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- Benches for extension substrates ---

func BenchmarkECCEncodeRow(b *testing.B) {
	row := dram.NewRow(8192)
	for i := range row {
		row[i] = uint64(i) * 0x9E3779B9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code := ecc.EncodeRow(row)
		if len(code) == 0 {
			b.Fatal("empty code")
		}
	}
	b.SetBytes(int64(len(row) * 8))
}

func BenchmarkECCVerifyRow(b *testing.B) {
	row := dram.NewRow(8192)
	for i := range row {
		row[i] = uint64(i) * 0x9E3779B9
	}
	code := ecc.EncodeRow(row)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := ecc.VerifyRow(row, code)
		if err != nil || !v.Clean() {
			b.Fatal("verify failed")
		}
	}
	b.SetBytes(int64(len(row) * 8))
}

func BenchmarkDDR3CommandSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ddr3.DefaultConfig()
		ctrl, err := ddr3.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		at := dram.Nanoseconds(0)
		for r := 0; r < 1000; r++ {
			at += 60
			if err := ctrl.Enqueue(ddr3.Request{ID: r, Arrival: at, Bank: r % 8, Row: r % 16, Write: r%4 == 0}); err != nil {
				b.Fatal(err)
			}
		}
		if len(ctrl.Drain()) != 1000 {
			b.Fatal("lost requests")
		}
	}
	b.ReportMetric(1000, "requests/op")
}

func BenchmarkBitmapPRIL(b *testing.B) {
	tr := benchTrace(b)
	cfg := pril.Config{Quantum: 1024 * trace.Millisecond, NumPages: tr.MaxPage() + 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pril.RunBitmap(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}

func BenchmarkTraceCompactEncode(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf countingWriter
		if err := tr.WriteCompact(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(buf.n)
	}
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// --- Engine hot-loop benchmarks (recorded in BENCH_engine.json) ---

// benchSystemTrace builds a small deterministic trace confined to the
// given page space, for full-silicon System runs.
func benchSystemTrace(pages int) *trace.Trace {
	rng := rand.New(rand.NewSource(42))
	tr := &trace.Trace{Name: "bench-system"}
	at := trace.Microseconds(0)
	for i := 0; i < 20_000; i++ {
		at += trace.Microseconds(rng.Intn(400) + 10)
		tr.Events = append(tr.Events, trace.Event{Page: uint32(rng.Intn(pages)), At: at})
	}
	tr.Duration = at + trace.Second
	return tr
}

// BenchmarkEngineRun is the end-to-end engine benchmark scripts/bench.sh
// records in BENCH_engine.json:
//
//   - accounting: fresh engine per run on the Netflix trace — the
//     figure-generation path (compare BenchmarkEngineObserverDisabled
//     at the pre-flat-state baseline).
//   - steady: one engine recycled with Reset between runs — the sweep
//     path; must be allocation-free after warm-up.
//   - stream: the same trace replayed from in-memory compact bytes
//     through trace.Stream, pricing the streaming decode on top of the
//     engine loop.
//   - system: full-silicon mode (module + fault model + online tests)
//     on a small geometry.
func BenchmarkEngineRun(b *testing.B) {
	tr := benchTrace(b)
	events := float64(len(tr.Events))

	b.Run("accounting", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunWith(tr, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(events, "events/op")
	})

	b.Run("steady", func(b *testing.B) {
		cfg := core.DefaultConfig()
		if max := tr.MaxPage(); max >= cfg.NumPages {
			cfg.NumPages = max + 1
		}
		e, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(tr); err != nil { // warm internal buffers
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Reset()
			if _, err := e.Run(tr); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(events, "events/op")
	})

	b.Run("stream", func(b *testing.B) {
		var buf bytes.Buffer
		if err := tr.WriteCompact(&buf); err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		if max := tr.MaxPage(); max >= cfg.NumPages {
			cfg.NumPages = max + 1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := trace.NewStream(bytes.NewReader(buf.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.RunSource(nil, s, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
		b.ReportMetric(events, "events/op")
	})

	b.Run("system", func(b *testing.B) {
		geom := dram.Geometry{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2, RowsPerBank: 256, ColsPerRow: 512, RedundantCols: 16}
		scr := dram.NewScrambler(geom, 42, nil)
		model, err := faults.NewModel(geom, scr, 42, faults.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		mod, err := dram.NewModule(geom)
		if err != nil {
			b.Fatal(err)
		}
		str := benchSystemTrace(geom.TotalRows())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys, err := core.NewSystem(core.DefaultConfig(), mod, model)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Run(str); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(str.Events)), "events/op")
	})
}

// BenchmarkFleetRun times the fleet-scale simulation end to end: 64
// heterogeneous modules over 12 weekly scrub epochs, sharded across the
// worker pool. The events/op metric pins the workload shape — it must
// be identical at every worker count (the determinism contract), so a
// change in the metric between sub-benches is a bug, not noise.
func BenchmarkFleetRun(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := fleet.Config{Modules: 64, Seed: 42, Scale: 0.05, Workers: workers}
			var log *fleet.Log
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				log, err = fleet.Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(log.Events)), "events/op")
		})
	}
}

// BenchmarkFleetAnalyze times the analytics pass alone (clustering,
// classification, risk scoring) over a prebuilt 64-module CE log.
func BenchmarkFleetAnalyze(b *testing.B) {
	log, err := fleet.Run(context.Background(), fleet.Config{Modules: 64, Seed: 42, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	var an *fleet.Analytics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an = fleet.Analyze(log)
	}
	b.ReportMetric(float64(an.UniqueCells), "cells/op")
}
